#include <functional>
#include <random>

#include <gtest/gtest.h>

#include "solver/candidates.hpp"
#include "solver/exact.hpp"
#include "solver/naive.hpp"
#include "testutil.hpp"

namespace mfa::solver {
namespace {

using core::Platform;
using core::Problem;
using test::make_kernel;
using test::tiny_problem;

TEST(Candidates, EnumerationCoversAndSorts) {
  Problem p;
  p.app.kernels = {make_kernel("a", 12.0, 0.0, 30.0, 0.0),
                   make_kernel("b", 5.0, 0.0, 25.0, 0.0)};
  p.platform = Platform{"2", 2};
  const std::vector<double> c = candidate_iis(p);
  ASSERT_FALSE(c.empty());
  // Sorted ascending, all of the form wcet/m, top equals max WCET.
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
  EXPECT_DOUBLE_EQ(c.back(), 12.0);
  // 12/2 = 6 must be present.
  bool has6 = false;
  for (double v : c) has6 |= std::fabs(v - 6.0) < 1e-12;
  EXPECT_TRUE(has6);
}

TEST(Candidates, NeededCusRoundsExactly) {
  EXPECT_EQ(needed_cus(12.0, 12.0), 1);
  EXPECT_EQ(needed_cus(12.0, 6.0), 2);
  EXPECT_EQ(needed_cus(12.0, 5.9), 3);
  // Exact candidate value: 12/7 computed then passed back in.
  EXPECT_EQ(needed_cus(12.0, 12.0 / 7.0), 7);
  EXPECT_EQ(needed_cus(1.0, 100.0), 1);  // never below one CU
}

TEST(Candidates, MinimalTotalsMeetTarget) {
  Problem p = tiny_problem();
  const double t = 3.0;
  const std::vector<int> totals = minimal_totals(p, t);
  for (std::size_t k = 0; k < totals.size(); ++k) {
    EXPECT_LE(p.app.kernels[k].wcet_ms / totals[k], t * (1 + 1e-9));
    if (totals[k] > 1) {
      // Minimality: one fewer CU would miss the target.
      EXPECT_GT(p.app.kernels[k].wcet_ms / (totals[k] - 1), t * (1 - 1e-9));
    }
  }
}

TEST(ExactSolver, SingleKernelKnownOptimum) {
  // 10 ms kernel, DSP 30%/CU, one FPGA at 100% → N = 3, II = 10/3.
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"1", 1};
  auto r = ExactSolver().solve(p);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().proved_optimal);
  EXPECT_NEAR(r.value().ii, 10.0 / 3.0, 1e-12);
}

TEST(ExactSolver, TwoFpgasDoubleTheCus) {
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"2", 2};
  auto r = ExactSolver().solve(p);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NEAR(r.value().ii, 10.0 / 6.0, 1e-12);
}

TEST(ExactSolver, InfeasibleWhenOneCuCannotPlace) {
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 0.0, 90.0, 0.0)};
  p.platform = Platform{"1", 1};
  p.resource_fraction = 0.5;
  auto r = ExactSolver().solve(p);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kInfeasible);
}

TEST(ExactSolver, SpreadingTermChangesOptimum) {
  // With β = 0 the optimum replicates aggressively; a large β makes the
  // single-FPGA, low-spreading solution win.
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"2", 2};

  p.beta = 0.0;
  auto speed = ExactSolver().solve(p);
  ASSERT_TRUE(speed.is_ok());
  EXPECT_NEAR(speed.value().ii, 10.0 / 6.0, 1e-12);

  p.beta = 100.0;
  auto consolidated = ExactSolver().solve(p);
  ASSERT_TRUE(consolidated.is_ok());
  // Splitting over 2 FPGAs costs ≥ β·(extra φ) ≫ the II gain.
  EXPECT_EQ(consolidated.value().allocation.fpgas_used_by(0), 1);
  EXPECT_LE(consolidated.value().phi, 0.75 + 1e-12);
}

TEST(ExactSolver, GoalIsAlphaIiPlusBetaPhi) {
  Problem p = tiny_problem();
  p.beta = 0.7;
  auto r = ExactSolver().solve(p);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NEAR(r.value().goal,
              p.alpha * r.value().ii + p.beta * r.value().phi, 1e-12);
  EXPECT_TRUE(r.value().allocation.feasible());
}

TEST(ExactSolver, ReportsLimitOnStarvedBudget) {
  Problem p = tiny_problem();
  ExactOptions opts;
  opts.max_nodes = 0;
  auto r = ExactSolver(opts).solve(p);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kLimit);
}

TEST(NaiveMinlp, SolvesTinyKnownInstance) {
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"1", 1};
  NaiveMinlp naive;
  auto r = naive.solve(p);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().proved_optimal);
  EXPECT_NEAR(r.value().allocation.ii(), 10.0 / 3.0, 1e-12);
}

TEST(NaiveMinlp, DetectsInfeasible) {
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 0.0, 60.0, 0.0),
                   make_kernel("b", 1.0, 0.0, 60.0, 0.0)};
  p.platform = Platform{"1", 1};
  auto r = NaiveMinlp().solve(p);
  EXPECT_EQ(r.status().code(), Code::kInfeasible);
}

/// Property: on random tiny instances the structured exact solver and
/// the transformation-free naive oracle find the same optimal goal —
/// the central correctness argument for the candidate-II + packing
/// decomposition and its symmetry breaking.
class ExactVsNaive : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsNaive, SameOptimalGoal) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2903u);
  test::RandomSpec spec;
  spec.max_kernels = 3;
  spec.max_fpgas = 2;
  Problem p = test::random_problem(rng, spec);

  auto smart = ExactSolver().solve(p);
  NaiveMinlp naive;
  auto oracle = naive.solve(p);

  ASSERT_EQ(smart.is_ok(), oracle.is_ok())
      << "smart: " << smart.status().to_string()
      << " naive: " << oracle.status().to_string();
  if (!smart.is_ok()) return;
  ASSERT_TRUE(smart.value().proved_optimal);
  ASSERT_TRUE(oracle.value().proved_optimal);
  EXPECT_NEAR(smart.value().goal, oracle.value().goal,
              1e-6 * (1.0 + oracle.value().goal))
      << "alpha=" << p.alpha << " beta=" << p.beta
      << " F=" << p.num_fpgas() << "\nsmart:\n"
      << smart.value().allocation.to_string() << "naive:\n"
      << oracle.value().allocation.to_string();
  EXPECT_TRUE(smart.value().allocation.feasible());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsNaive, ::testing::Range(1, 61));

/// Property: optimal II is monotone non-increasing in the constraint.
class ExactMonotone : public ::testing::TestWithParam<int> {};

TEST_P(ExactMonotone, IiMonotoneInConstraint) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u);
  test::RandomSpec spec;
  spec.max_kernels = 3;
  spec.max_fpgas = 2;
  Problem p = test::random_problem(rng, spec);
  p.beta = 0.0;
  double previous = std::numeric_limits<double>::infinity();
  for (double rc = 0.5; rc <= 1.01; rc += 0.125) {
    p.resource_fraction = std::min(rc, 1.0);
    auto r = ExactSolver().solve(p);
    if (!r.is_ok()) {
      // Infeasible at a loose constraint implies infeasible at tighter
      // ones — it must not have been feasible before.
      EXPECT_TRUE(std::isinf(previous));
      continue;
    }
    EXPECT_LE(r.value().ii, previous * (1.0 + 1e-9));
    previous = r.value().ii;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactMonotone, ::testing::Range(1, 16));

}  // namespace
}  // namespace mfa::solver
