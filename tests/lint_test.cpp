// Golden-diagnostic tests for tools/mfa_lint.
//
// The fixtures under tests/lint_fixtures/ are hand-written source files
// with known defects; each expected finding is pinned to an exact
// (file, line, rule) triple so a rule that drifts — fires on the wrong
// line, under the wrong ID, or stops firing — breaks this test rather
// than silently rotting. The clean fixtures hold the look-alikes the
// tokenizer must NOT match (word boundaries, comments, strings,
// suppressed lines), so false-positive regressions fail here too.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

std::string fixture_dir() { return MFA_LINT_FIXTURE_DIR; }

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Loads every fixture whose relative path passes `keep`, keyed by the
// path relative to the fixture dir (so expectations stay stable no
// matter where the build runs).
std::vector<std::pair<std::string, std::string>> load_fixtures(
    bool (*keep)(const std::string&)) {
  std::vector<std::pair<std::string, std::string>> sources;
  for (const auto& entry : fs::recursive_directory_iterator(fixture_dir())) {
    if (!entry.is_regular_file()) continue;
    std::string rel =
        fs::relative(entry.path(), fixture_dir()).generic_string();
    if (!keep(rel)) continue;
    // Rule paths key off substrings like "/solver/"; keep a leading
    // slash so top-level fixtures still look like rooted paths.
    sources.emplace_back("/" + rel, slurp(entry.path()));
  }
  return sources;
}

bool keep_all(const std::string&) { return true; }
bool keep_clean(const std::string& rel) {
  return rel.find("clean") != std::string::npos;
}

std::set<std::string> finding_keys(
    const std::vector<mfa::lint::Diagnostic>& diags) {
  std::set<std::string> keys;
  for (const auto& d : diags)
    keys.insert(d.file + ":" + std::to_string(d.line) + ":" + d.rule);
  return keys;
}

TEST(LintGolden, EveryExpectedFindingFiresAtItsExactLine) {
  const auto diags = mfa::lint::run_lint(load_fixtures(keep_all));

  const std::set<std::string> expected = {
      "/io_bad.cpp:8:banned-io",
      "/io_bad.cpp:9:banned-io",
      "/mutex_bad.hpp:18:mutex-hygiene",
      "/serialize_bad.cpp:10:serialize-determinism",
      "/serialize_bad.cpp:15:serialize-determinism",
      "/serialize_bad.cpp:21:serialize-determinism",
      "/serialize_bad.cpp:22:serialize-determinism",
      "/solver/clock_bad.cpp:8:solver-clock",
      "/solver/clock_bad.cpp:12:solver-clock",
      "/solver/clock_bad.cpp:17:solver-clock",
      "/warm_alloc_bad.cpp:12:warm-path-alloc",
      "/warm_alloc_bad.cpp:20:warm-path-alloc",
      "/warm_alloc_bad.cpp:21:warm-path-alloc",
  };

  EXPECT_EQ(finding_keys(diags), expected) << mfa::lint::format(diags);
}

TEST(LintGolden, CallGraphChainsNameTheWarmRoot) {
  const auto diags = mfa::lint::run_lint(load_fixtures(keep_all));
  bool saw_chain = false;
  for (const auto& d : diags) {
    if (d.file == "/warm_alloc_bad.cpp" && d.line == 20) {
      saw_chain =
          d.message.find("hot_delta <- cold_helper") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_chain)
      << "transitive warm-path finding should report its call chain";
}

TEST(LintGolden, CleanFixturesProduceNoFindings) {
  const auto diags = mfa::lint::run_lint(load_fixtures(keep_clean));
  EXPECT_TRUE(diags.empty()) << mfa::lint::format(diags);
}

// --- Tokenizer / indexing unit tests -------------------------------

TEST(LintTokenizer, WordExactIdentifiers) {
  const auto f = mfa::lint::tokenize(
      "/solver/x.cpp", "double start_time(int s);\nint t = time(nullptr);\n");
  bool saw_start_time = false, saw_bare_time = false;
  for (const auto& t : f.tokens) {
    if (t.text == "start_time") saw_start_time = true;
    if (t.text == "time") saw_bare_time = true;
  }
  EXPECT_TRUE(saw_start_time);
  EXPECT_TRUE(saw_bare_time) << "`time` must tokenize separately, not be "
                                "swallowed by start_time's substring";
}

TEST(LintTokenizer, CommentsStringsAndPreprocessorAreNotTokens) {
  const auto f = mfa::lint::tokenize("/x.cpp",
                                    "// push_back here\n"
                                    "/* new int */\n"
                                    "#define push_back ignored\n"
                                    "const char* s = \"rand()\";\n");
  for (const auto& t : f.tokens) {
    EXPECT_NE(t.text, "push_back");
    EXPECT_NE(t.text, "new");
    EXPECT_NE(t.text, "rand");
  }
}

TEST(LintTokenizer, SuppressionAttachesToNextCodeLine) {
  const auto f = mfa::lint::tokenize("/x.cpp",
                                    "int a;\n"
                                    "// mfa-lint: allow(warm-path-alloc) why\n"
                                    "int b;\n");
  EXPECT_FALSE(f.allowed(1, "warm-path-alloc"));
  EXPECT_TRUE(f.allowed(3, "warm-path-alloc"));
  EXPECT_FALSE(f.allowed(3, "banned-io")) << "suppressions are per-rule";
}

TEST(LintTokenizer, IncludesAreRecorded) {
  const auto f = mfa::lint::tokenize(
      "/x.cpp", "#include <unordered_map>\n#include \"lint.hpp\"\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].second, "unordered_map");
  EXPECT_EQ(f.includes[1].second, "lint.hpp");
}

TEST(LintForbidSuppression, FlagsOnlyTheForbiddenRule) {
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"/x.cpp",
       "int a;\n"
       "// mfa-lint: allow(warm-path-alloc) grow-once scratch\n"
       "int b;\n"
       "// mfa-lint: allow(banned-io) CLI surface\n"
       "int c;\n"}};
  const auto none = mfa::lint::forbid_suppressions(sources, {});
  EXPECT_TRUE(none.empty());
  const auto found =
      mfa::lint::forbid_suppressions(sources, {"warm-path-alloc"});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].file, "/x.cpp");
  EXPECT_EQ(found[0].line, 3) << "the suppression reports at the line it "
                                 "attaches to, like the rule it silences";
  EXPECT_EQ(found[0].rule, "forbid-suppression");
  EXPECT_NE(found[0].message.find("warm-path-alloc"), std::string::npos);
}

TEST(LintIndex, WarmMarkingIsPerFile) {
  std::vector<mfa::lint::SourceFile> files;
  files.push_back(mfa::lint::tokenize(
      "/a.cpp", "#define MFA_WARM_PATH\nMFA_WARM_PATH void value() {}\n"));
  files.push_back(mfa::lint::tokenize("/b.cpp", "void value() {}\n"));
  const auto corpus = mfa::lint::index(std::move(files));
  ASSERT_EQ(corpus.functions.size(), 2u);
  int warm = 0;
  for (const auto& fn : corpus.functions)
    if (fn.warm) ++warm;
  EXPECT_EQ(warm, 1) << "a warm name in a.cpp must not mark b.cpp's "
                        "same-named definition warm";
}

}  // namespace
