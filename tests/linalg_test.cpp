#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "linalg/decompose.hpp"
#include "linalg/matrix.hpp"

namespace mfa::linalg {
namespace {

TEST(Vector, ArithmeticAndNorms) {
  Vector a{1.0, -2.0, 3.0};
  Vector b{0.5, 0.5, 0.5};
  Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 1.5);
  EXPECT_DOUBLE_EQ(sum[1], -1.5);
  EXPECT_DOUBLE_EQ(sum[2], 3.5);
  EXPECT_DOUBLE_EQ(dot(a, b), 0.5 - 1.0 + 1.5);
  EXPECT_DOUBLE_EQ(norm_inf(a), 3.0);
  EXPECT_DOUBLE_EQ(norm2(Vector{3.0, 4.0}), 5.0);
}

TEST(Vector, ScalarScaling) {
  Vector v{2.0, -4.0};
  EXPECT_DOUBLE_EQ((v * 0.5)[0], 1.0);
  EXPECT_DOUBLE_EQ((0.5 * v)[1], -2.0);
}

TEST(Vector, EmptyNorms) {
  Vector v;
  EXPECT_DOUBLE_EQ(norm_inf(v), 0.0);
  EXPECT_DOUBLE_EQ(norm2(v), 0.0);
}

TEST(Matrix, IdentityAndMultiply) {
  Matrix id = Matrix::identity(3);
  Vector x{1.0, 2.0, 3.0};
  Vector y = id.mul(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Matrix, MatVecKnown) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Vector x{1.0, -1.0};
  Vector y = a.mul(x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Matrix, TransposedMulAgreesWithExplicitTranspose) {
  Matrix a{{1.0, 2.0, 0.0}, {0.0, 1.0, 4.0}};
  Vector x{2.0, 3.0};
  Vector via_method = a.mul_transposed(x);
  Vector via_transpose = a.transposed().mul(x);
  ASSERT_EQ(via_method.size(), via_transpose.size());
  for (std::size_t i = 0; i < via_method.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_method[i], via_transpose[i]);
  }
}

TEST(Matrix, MatMatKnown) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  Matrix c = a.mul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, NormInf) {
  Matrix a{{1.0, -7.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0);
}

TEST(Cholesky, SolvesSpdSystem) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  Vector b{2.0, 5.0};
  Vector x = chol->solve(b);
  Vector check = a.mul(x);
  EXPECT_NEAR(check[0], b[0], 1e-12);
  EXPECT_NEAR(check[1], b[1], 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, RegularizationRescuesSingular) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};  // rank 1
  EXPECT_FALSE(Cholesky::factor(a).has_value());
  EXPECT_TRUE(Cholesky::factor(a, 1e-6).has_value());
}

TEST(Lu, SolvesGeneralSystem) {
  Matrix a{{0.0, 2.0, 1.0}, {1.0, -2.0, -3.0}, {-1.0, 1.0, 2.0}};
  auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  Vector b{-8.0, 0.0, 3.0};
  Vector x = lu->solve(b);
  Vector check = a.mul(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(check[i], b[i], 1e-10);
}

TEST(Lu, DeterminantKnown) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  auto lu = Lu::factor(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->determinant(), 6.0, 1e-12);

  // Permutation flips sign bookkeeping but not the determinant value.
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  auto lub = Lu::factor(b);
  ASSERT_TRUE(lub.has_value());
  EXPECT_NEAR(lub->determinant(), -1.0, 1e-12);
}

TEST(Lu, RejectsSingular) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(Lu::factor(a).has_value());
}

TEST(SolveSpd, HandlesSemidefinite) {
  // A = vvᵀ + εI is near-singular; solve_spd must still return a finite
  // solution of the regularized system.
  Matrix a{{1.0, 1.0}, {1.0, 1.0 + 1e-14}};
  Vector b{1.0, 1.0};
  auto x = solve_spd(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(std::isfinite((*x)[0]));
  EXPECT_TRUE(std::isfinite((*x)[1]));
}

/// Property sweep: random SPD systems A = BᵀB + I solve to high accuracy
/// via both factorizations.
class RandomSpdTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSpdTest, CholeskyAndLuAgree) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 6;
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = u(rng);
  Matrix a = b.transposed().mul(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;

  Vector rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = u(rng);

  auto chol = Cholesky::factor(a);
  auto lu = Lu::factor(a);
  ASSERT_TRUE(chol.has_value());
  ASSERT_TRUE(lu.has_value());
  Vector x1 = chol->solve(rhs);
  Vector x2 = lu->solve(rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);

  Vector residual = a.mul(x1) - rhs;
  EXPECT_LT(norm_inf(residual), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpdTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace mfa::linalg
