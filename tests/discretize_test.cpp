#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "solver/discretize.hpp"
#include "testutil.hpp"

namespace mfa::solver {
namespace {

using core::Platform;
using core::Problem;
using test::make_kernel;
using test::tiny_problem;

TEST(Discretizer, IntegralRelaxationPassesThrough) {
  // Relaxation already integral (resource bound hits exactly 4 CUs).
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 0.0, 25.0, 0.0)};
  p.platform = Platform{"1", 1};
  auto r = Discretizer().run(p);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().totals, std::vector<int>{4});
  EXPECT_NEAR(r.value().ii, 2.5, 1e-9);
  EXPECT_TRUE(r.value().proved_optimal);
}

TEST(Discretizer, RoundsFractionalOptimally) {
  // Two identical kernels, DSP 30%/CU, one FPGA: relaxation gives
  // N̂ = 5/3 each; integral optimum is {2, 1} or {1, 2} with II = wcet.
  Problem p;
  p.app.kernels = {make_kernel("a", 10.0, 0.0, 30.0, 0.0),
                   make_kernel("b", 10.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"1", 1};
  auto r = Discretizer().run(p);
  ASSERT_TRUE(r.is_ok());
  const auto& totals = r.value().totals;
  EXPECT_EQ(totals[0] + totals[1], 3);
  EXPECT_NEAR(r.value().ii, 10.0, 1e-9);
  // Root relaxation is a valid lower bound.
  EXPECT_LE(r.value().relaxed_ii, r.value().ii + 1e-9);
}

TEST(Discretizer, LowerBoundTightness) {
  Problem p = tiny_problem();
  auto r = Discretizer().run(p);
  ASSERT_TRUE(r.is_ok());
  EXPECT_GE(r.value().ii, r.value().relaxed_ii - 1e-9);
  for (int n : r.value().totals) EXPECT_GE(n, 1);
}

TEST(Discretizer, InfeasibleRelaxationPropagates) {
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 0.0, 60.0, 0.0),
                   make_kernel("b", 1.0, 0.0, 60.0, 0.0)};
  p.platform = Platform{"1", 1};
  auto r = Discretizer().run(p);
  EXPECT_EQ(r.status().code(), Code::kInfeasible);
}

TEST(Discretizer, NodeCapReported) {
  Problem p = tiny_problem();
  DiscretizeOptions opts;
  opts.max_nodes = 1;
  auto r = Discretizer(opts).run(p);
  // Either it finished in one node or it reports the cap.
  if (!r.is_ok()) {
    EXPECT_EQ(r.status().code(), Code::kLimit);
  } else {
    EXPECT_LE(r.value().nodes, 1);
  }
}

/// Oracle: brute-force the best integral totals under the pooled
/// constraints for tiny instances.
double brute_force_best_ii(const Problem& p) {
  const double f = p.num_fpgas();
  std::vector<int> caps(p.num_kernels());
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    caps[k] = std::min(p.max_cu_total(k), 6);
  }
  std::vector<int> totals(p.num_kernels(), 1);
  double best = std::numeric_limits<double>::infinity();
  std::function<void(std::size_t)> rec = [&](std::size_t k) {
    if (k == p.num_kernels()) {
      core::ResourceVec pooled;
      double bw = 0.0;
      double ii = 0.0;
      for (std::size_t j = 0; j < totals.size(); ++j) {
        pooled += p.app.kernels[j].res * static_cast<double>(totals[j]);
        bw += p.app.kernels[j].bw * totals[j];
        ii = std::max(ii, p.app.kernels[j].wcet_ms / totals[j]);
      }
      if (pooled.fits_within(p.cap() * f, 1e-9) && bw <= f * p.bw_cap() + 1e-9) {
        best = std::min(best, ii);
      }
      return;
    }
    for (int n = 1; n <= caps[k]; ++n) {
      totals[k] = n;
      rec(k + 1);
    }
  };
  rec(0);
  return best;
}

/// Property: the branch-and-bound rounding finds the optimal integral
/// totals of the pooled problem (what the paper's §3.2.2 B&B promises).
class RandomDiscretize : public ::testing::TestWithParam<int> {};

TEST_P(RandomDiscretize, MatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 911u);
  test::RandomSpec spec;
  spec.max_kernels = 3;
  spec.max_fpgas = 2;
  Problem p = test::random_problem(rng, spec);
  // Keep per-kernel CU caps small so the oracle stays cheap.
  p.resource_fraction = std::max(p.resource_fraction, 0.6);

  auto r = Discretizer().run(p);
  const double oracle = brute_force_best_ii(p);
  if (!r.is_ok()) {
    EXPECT_TRUE(std::isinf(oracle));
    return;
  }
  ASSERT_TRUE(r.value().proved_optimal);
  // The oracle caps totals at 6 per kernel, so it can only be ≥ B&B.
  EXPECT_LE(r.value().ii, oracle + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDiscretize, ::testing::Range(1, 41));

/// Sibling batching is a pure execution-strategy switch: the batched
/// child solves promise lane-for-lane bit identity with the unbatched
/// path, so the whole search — node count, incumbent, and the relaxed
/// values it is built from — must match bitwise, not just to tolerance.
class BatchedChildrenParity : public ::testing::TestWithParam<int> {};

TEST_P(BatchedChildrenParity, BitwiseEqualToUnbatched) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2503u);
  test::RandomSpec spec;
  spec.max_kernels = 4;
  spec.max_fpgas = 3;
  const Problem p = test::random_problem(rng, spec);

  DiscretizeOptions batched;
  batched.batch_children = true;
  DiscretizeOptions unbatched;
  unbatched.batch_children = false;

  const auto a = Discretizer(batched).run(p);
  const auto b = Discretizer(unbatched).run(p);
  ASSERT_EQ(a.is_ok(), b.is_ok());
  if (!a.is_ok()) {
    EXPECT_EQ(a.status().code(), b.status().code());
    return;
  }
  EXPECT_EQ(a.value().totals, b.value().totals);
  EXPECT_EQ(a.value().ii, b.value().ii);                  // bitwise
  EXPECT_EQ(a.value().relaxed_ii, b.value().relaxed_ii);  // bitwise
  EXPECT_EQ(a.value().nodes, b.value().nodes);
  EXPECT_EQ(a.value().proved_optimal, b.value().proved_optimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedChildrenParity,
                         ::testing::Range(1, 31));

}  // namespace
}  // namespace mfa::solver
