// ShardRouter coverage: the pinned hash (stability is a wire/WAL
// contract), deterministic routing, per-shard equivalence with
// standalone servers, resize broadcast, the process-wide shared model
// cache, and WAL recovery of a sharded deployment.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "scenario/trace.hpp"
#include "service/alloc_server.hpp"
#include "service/shard_router.hpp"
#include "testutil.hpp"

namespace mfa::service {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("mfa_router_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

scenario::Trace small_trace(int events, std::uint64_t seed = 71) {
  scenario::TraceSpec spec;
  spec.num_events = events;
  spec.num_fpgas = 3;
  spec.max_live_pipelines = 4;
  spec.max_kernels = 3;
  return scenario::generate_trace(spec, seed);
}

std::string incumbent_json(const AllocServer& server) {
  const std::optional<runtime::SolveResult> inc = server.incumbent();
  if (!inc.has_value() || !inc->allocation.has_value()) return "";
  return io::to_json(*inc->allocation).dump() + "|" + inc->winner;
}

TEST(ShardRouter, StableHashIsPinnedFnv1a64) {
  // Reference FNV-1a 64 vectors. These values are load-bearing: they
  // decide which shard (and which on-disk WAL) owns a pipeline, so a
  // hash change is a breaking format change, not a refactor.
  EXPECT_EQ(stable_hash(""), 14695981039346656037ull);
  EXPECT_EQ(stable_hash("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(stable_hash("foobar"), 0x85944171f73967e8ull);
}

TEST(ShardRouter, RoutingIsDeterministicAcrossInstances) {
  const scenario::Trace trace = small_trace(1);
  RouterOptions options;
  options.shards = 4;
  auto a = ShardRouter::open(trace.platform, options);
  auto b = ShardRouter::open(trace.platform, options);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  bool multiple_shards_used = false;
  for (int i = 0; i < 64; ++i) {
    const std::string id = "pipeline-" + std::to_string(i);
    const std::size_t shard = a.value()->shard_of(id);
    EXPECT_LT(shard, options.shards);
    EXPECT_EQ(shard, b.value()->shard_of(id));
    if (shard != a.value()->shard_of("pipeline-0")) {
      multiple_shards_used = true;
    }
  }
  // The ring actually spreads ids (not a fixed-to-one-shard bug).
  EXPECT_TRUE(multiple_shards_used);
}

TEST(ShardRouter, MatchesStandaloneServersPerShard) {
  const scenario::Trace trace = small_trace(16);
  RouterOptions options;
  options.shards = 2;
  auto router = ShardRouter::open(trace.platform, options);
  ASSERT_TRUE(router.is_ok());

  // Partition the trace exactly the way the router will: per-pipeline
  // events by shard_of, resizes to every shard.
  std::map<std::size_t, std::vector<Event>> partitions;
  for (const Event& event : trace.events) {
    if (event.type == Event::Type::kResizePlatform) {
      for (std::size_t s = 0; s < options.shards; ++s) {
        partitions[s].push_back(event);
      }
      continue;
    }
    const std::string& id = event.type == Event::Type::kAddPipeline
                                ? event.pipeline.id
                                : event.id;
    partitions[router.value()->shard_of(id)].push_back(event);
  }

  for (const Event& event : trace.events) router.value()->apply(event);

  for (std::size_t s = 0; s < options.shards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    AllocServer standalone(trace.platform, options.server);
    for (const Event& event : partitions[s]) standalone.apply(event);
    standalone.stop();
    EXPECT_EQ(incumbent_json(router.value()->shard(s)),
              incumbent_json(standalone));
    EXPECT_EQ(router.value()->shard(s).active_pipelines(),
              standalone.active_pipelines());
  }
}

TEST(ShardRouter, ResizeBroadcastsToEveryShard) {
  const scenario::Trace trace = small_trace(1);
  RouterOptions options;
  options.shards = 3;
  auto router = ShardRouter::open(trace.platform, options);
  ASSERT_TRUE(router.is_ok());

  core::Platform bigger = trace.platform;
  bigger.num_fpgas += 2;
  const EventOutcome merged = router.value()->apply(Event::resize(bigger));
  EXPECT_TRUE(merged.status.is_ok()) << merged.status.to_string();

  // Every shard consumed exactly one event and counted the broadcast.
  for (const ServiceStats& s : router.value()->shard_stats()) {
    EXPECT_EQ(s.sequence, 1u);
    EXPECT_EQ(s.resizes, 1u);
  }
  EXPECT_EQ(router.value()->stats().sequence, 3u);
  EXPECT_EQ(router.value()->stats().resizes, 3u);
}

TEST(ShardRouter, ShardsShareOneCompiledModelCache) {
  const scenario::Trace trace = small_trace(1);
  RouterOptions options;
  options.shards = 4;
  options.server.portfolio.gpa.use_interior_point = true;
  auto router = ShardRouter::open(trace.platform, options);
  ASSERT_TRUE(router.is_ok());

  // Two ids with the same pipeline structure, landing on *different*
  // shards — probe the ring until we find a pair.
  std::string first = "tenant-0";
  std::string second;
  for (int i = 1; i < 256 && second.empty(); ++i) {
    const std::string candidate = "tenant-" + std::to_string(i);
    if (router.value()->shard_of(candidate) !=
        router.value()->shard_of(first)) {
      second = candidate;
    }
  }
  ASSERT_FALSE(second.empty());

  core::Application app;
  app.name = "shared-structure";
  app.kernels = {
      test::make_kernel("k0", 8.0, 10.0, 20.0, 5.0),
      test::make_kernel("k1", 12.0, 8.0, 15.0, 4.0),
  };

  const EventOutcome a =
      router.value()->apply(Event::add(PipelineSpec{first, app, 1.0}));
  ASSERT_TRUE(a.status.is_ok()) << a.status.to_string();
  EXPECT_GT(a.cache.model_misses, 0u);  // first compile of this structure

  const EventOutcome b =
      router.value()->apply(Event::add(PipelineSpec{second, app, 1.0}));
  ASSERT_TRUE(b.status.is_ok()) << b.status.to_string();
  // The second shard never compiled this structure itself — a hit here
  // can only come from the process-wide shared cache.
  EXPECT_GT(b.cache.model_hits, 0u);
  EXPECT_EQ(b.cache.gp_compiles, 0);
}

TEST(ShardRouter, RecoversEveryShardFromWalRoot) {
  const TempDir dir("recover");
  const scenario::Trace trace = small_trace(14);
  RouterOptions options;
  options.shards = 2;
  options.wal_root = dir.path;

  std::vector<std::string> incumbents;
  std::size_t active = 0;
  {
    auto router = ShardRouter::open(trace.platform, options);
    ASSERT_TRUE(router.is_ok()) << router.status().to_string();
    for (const Event& event : trace.events) router.value()->apply(event);
    for (std::size_t s = 0; s < options.shards; ++s) {
      incumbents.push_back(incumbent_json(router.value()->shard(s)));
    }
    active = router.value()->active_pipelines();
    router.value()->stop();
  }

  auto recovered = ShardRouter::recover(options);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  ASSERT_EQ(recovered.value()->num_shards(), options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    EXPECT_EQ(incumbent_json(recovered.value()->shard(s)), incumbents[s]);
  }
  EXPECT_EQ(recovered.value()->active_pipelines(), active);
  recovered.value()->stop();
}

TEST(ShardRouter, RecoverRejectsShardCountMismatch) {
  const TempDir dir("mismatch");
  const scenario::Trace trace = small_trace(4);
  RouterOptions options;
  options.shards = 2;
  options.wal_root = dir.path;
  {
    auto router = ShardRouter::open(trace.platform, options);
    ASSERT_TRUE(router.is_ok());
    for (const Event& event : trace.events) router.value()->apply(event);
    router.value()->stop();
  }
  // Fewer shards than the layout: shard-1's history would be orphaned.
  RouterOptions fewer = options;
  fewer.shards = 1;
  EXPECT_FALSE(ShardRouter::recover(fewer).is_ok());
  // More shards than the layout: shard-2 has no WAL to recover from.
  RouterOptions more = options;
  more.shards = 3;
  EXPECT_FALSE(ShardRouter::recover(more).is_ok());
}

TEST(ShardRouter, OpenRejectsZeroShards) {
  const scenario::Trace trace = small_trace(1);
  RouterOptions options;
  options.shards = 0;
  EXPECT_FALSE(ShardRouter::open(trace.platform, options).is_ok());
}

}  // namespace
}  // namespace mfa::service
