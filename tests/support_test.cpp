#include <gtest/gtest.h>

#include "solver/budget.hpp"
#include "support/status.hpp"

namespace mfa {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s{Code::kInfeasible, "no placement"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "infeasible: no placement");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(code_name(Code::kOk), "ok");
  EXPECT_STREQ(code_name(Code::kInfeasible), "infeasible");
  EXPECT_STREQ(code_name(Code::kLimit), "limit");
  EXPECT_STREQ(code_name(Code::kInvalid), "invalid");
  EXPECT_STREQ(code_name(Code::kNumeric), "numeric");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().is_ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status{Code::kInvalid, "bad"};
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), Code::kInvalid);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  const std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOr, RejectsOkStatusWithoutValue) {
  EXPECT_DEATH(
      { StatusOr<int> v{Status::ok()}; (void)v; },
      "StatusOr from ok status");
}

TEST(Budget, UnlimitedByDefault) {
  solver::Budget b;
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(b.tick());
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.nodes_used(), 10'000);
}

TEST(Budget, NodeCapTrips) {
  solver::Budget b = solver::Budget::nodes_only(3);
  EXPECT_TRUE(b.tick());
  EXPECT_TRUE(b.tick());
  EXPECT_TRUE(b.tick());
  EXPECT_FALSE(b.tick());
  EXPECT_TRUE(b.exhausted());
  // Once exhausted, it stays exhausted.
  EXPECT_FALSE(b.tick());
}

TEST(Budget, DeadlineTrips) {
  solver::Budget b(1'000'000'000, 0.0);  // already expired
  // The deadline is polled every 1024 nodes.
  bool tripped = false;
  for (int i = 0; i < 2048 && !tripped; ++i) tripped = !b.tick();
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(b.exhausted());
}

}  // namespace
}  // namespace mfa
