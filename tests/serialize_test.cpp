#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "hls/paper.hpp"
#include "io/serialize.hpp"
#include "testutil.hpp"

namespace mfa::io {
namespace {

using core::Problem;
using core::Resource;
using test::tiny_problem;

TEST(Serialize, ProblemRoundTrip) {
  const Problem original = tiny_problem();
  const std::string text = to_json(original).dump(2);
  auto parsed = problem_from_text(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Problem& p = parsed.value();
  EXPECT_EQ(p.app.name, original.app.name);
  ASSERT_EQ(p.num_kernels(), original.num_kernels());
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    EXPECT_EQ(p.app.kernels[k].name, original.app.kernels[k].name);
    EXPECT_DOUBLE_EQ(p.app.kernels[k].wcet_ms,
                     original.app.kernels[k].wcet_ms);
    EXPECT_TRUE(p.app.kernels[k].res == original.app.kernels[k].res);
    EXPECT_DOUBLE_EQ(p.app.kernels[k].bw, original.app.kernels[k].bw);
  }
  EXPECT_EQ(p.num_fpgas(), original.num_fpgas());
  EXPECT_DOUBLE_EQ(p.resource_fraction, original.resource_fraction);
  EXPECT_DOUBLE_EQ(p.alpha, original.alpha);
  EXPECT_DOUBLE_EQ(p.beta, original.beta);
}

TEST(Serialize, PaperCaseRoundTripValidates) {
  Problem original = hls::paper::case_vgg_8fpga();
  original.resource_fraction = 0.61;
  auto parsed = problem_from_text(to_json(original).dump());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().validate().is_ok());
  EXPECT_DOUBLE_EQ(parsed.value().beta, 50.0);
}

TEST(Serialize, DefaultsApplyForOptionalFields) {
  const char* minimal = R"({
    "application": {"kernels": [{"name": "k", "wcet_ms": 2.0}]},
    "platform": {"fpgas": 3}
  })";
  auto parsed = problem_from_text(minimal);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Problem& p = parsed.value();
  EXPECT_EQ(p.num_fpgas(), 3);
  EXPECT_DOUBLE_EQ(p.platform.capacity[Resource::kDsp], 100.0);
  EXPECT_DOUBLE_EQ(p.platform.bw_capacity, 100.0);
  EXPECT_DOUBLE_EQ(p.resource_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.alpha, 1.0);
  EXPECT_DOUBLE_EQ(p.beta, 0.0);
  EXPECT_DOUBLE_EQ(p.app.kernels[0].bw, 0.0);
}

TEST(Serialize, MissingRequiredFieldsReportPaths) {
  auto no_app = problem_from_text(R"({"platform": {"fpgas": 1}})");
  EXPECT_EQ(no_app.status().code(), Code::kInvalid);
  EXPECT_NE(no_app.status().message().find("application"),
            std::string::npos);

  auto no_wcet = problem_from_text(
      R"({"application": {"kernels": [{"name": "k"}]},
          "platform": {"fpgas": 1}})");
  EXPECT_EQ(no_wcet.status().code(), Code::kInvalid);
  EXPECT_NE(no_wcet.status().message().find("wcet_ms"), std::string::npos);

  auto empty_kernels = problem_from_text(
      R"({"application": {"kernels": []}, "platform": {"fpgas": 1}})");
  EXPECT_EQ(empty_kernels.status().code(), Code::kInvalid);

  auto bad_fpgas = problem_from_text(
      R"({"application": {"kernels": [{"name":"k","wcet_ms":1}]},
          "platform": {"fpgas": 0}})");
  EXPECT_EQ(bad_fpgas.status().code(), Code::kInvalid);
}

TEST(Serialize, AllocationJsonCarriesMetrics) {
  Problem p = tiny_problem();
  core::Allocation a(p);
  a.set_cu(0, 0, 2);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  const Json j = to_json(a);
  EXPECT_DOUBLE_EQ(j.find("ii_ms")->as_number(), a.ii());
  EXPECT_DOUBLE_EQ(j.find("phi")->as_number(), a.phi());
  EXPECT_TRUE(j.find("feasible")->as_bool());
  const Json* matrix = j.find("matrix");
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix->size(), p.num_kernels());
  EXPECT_DOUBLE_EQ(matrix->at(0).at(0).as_number(), 2.0);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mfa_serialize_test.json";
  const Problem original = tiny_problem();
  ASSERT_TRUE(write_file(path, to_json(original).dump(2)).is_ok());
  auto text = read_file(path);
  ASSERT_TRUE(text.is_ok());
  auto parsed = problem_from_text(text.value());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().app.name, original.app.name);
  std::remove(path.c_str());
}

TEST(Serialize, ReadMissingFileFails) {
  auto r = read_file("/nonexistent/path/nope.json");
  EXPECT_EQ(r.status().code(), Code::kInvalid);
}

// ---- schema_version: writers stamp it, readers accept the current
// version and legacy v0 (no field), and reject anything else. ------------

/// Copy of an object with one member removed (Json has no erase).
Json without(const Json& j, std::string_view key) {
  Json out = Json::object();
  for (const auto& [k, v] : j.members()) {
    if (k != key) out.set(k, v);
  }
  return out;
}

scenario::Trace tiny_trace() {
  scenario::Trace trace;
  const Problem p = tiny_problem();
  trace.platform = p.platform;
  trace.events.push_back(
      service::Event::add(service::PipelineSpec{"p0", p.app, 1.0}, 0.5));
  trace.events.push_back(service::Event::remove("p0", 2.0));
  return trace;
}

TEST(Serialize, SchemaVersionStampedOnWrite) {
  const Json problem = to_json(tiny_problem());
  ASSERT_NE(problem.find("schema_version"), nullptr);
  EXPECT_EQ(problem.find("schema_version")->as_number(), kSchemaVersion);
  EXPECT_TRUE(problem_from_json(problem).is_ok());

  const Json trace = to_json(tiny_trace());
  ASSERT_NE(trace.find("schema_version"), nullptr);
  EXPECT_EQ(trace.find("schema_version")->as_number(), kSchemaVersion);
  auto round = trace_from_json(trace);
  ASSERT_TRUE(round.is_ok());
  // v0 → v1 migration: re-serializing a legacy document stamps the
  // current version.
  auto legacy = trace_from_json(without(trace, "schema_version"));
  ASSERT_TRUE(legacy.is_ok());
  EXPECT_EQ(to_json(legacy.value()).find("schema_version")->as_number(),
            kSchemaVersion);
}

TEST(Serialize, LegacyV0DocumentsAccepted) {
  // Pre-versioning documents carry no schema_version; both readers
  // accept them (version is only *required* on the wire and in WALs).
  EXPECT_TRUE(
      problem_from_json(without(to_json(tiny_problem()), "schema_version"))
          .is_ok());
  EXPECT_TRUE(
      trace_from_json(without(to_json(tiny_trace()), "schema_version"))
          .is_ok());
}

TEST(Serialize, UnknownSchemaVersionRejected) {
  Json problem = to_json(tiny_problem());
  problem.set("schema_version", Json::number(99));
  EXPECT_EQ(problem_from_json(problem).status().code(), Code::kInvalid);
  problem.set("schema_version", Json::number(1.5));
  EXPECT_EQ(problem_from_json(problem).status().code(), Code::kInvalid);
  problem.set("schema_version", Json::string("1"));
  EXPECT_EQ(problem_from_json(problem).status().code(), Code::kInvalid);

  Json trace = to_json(tiny_trace());
  trace.set("schema_version", Json::number(99));
  EXPECT_EQ(trace_from_json(trace).status().code(), Code::kInvalid);
}

TEST(Serialize, WalRecordRequiresSchemaVersion) {
  service::WalRecord record;
  record.sequence = 7;
  record.event = tiny_trace().events.front();
  const Json j = to_json(record);
  auto ok = wal_record_from_json(j);
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value().sequence, 7u);
  // The WAL was born versioned: a record without the field is corrupt,
  // not legacy.
  EXPECT_EQ(wal_record_from_json(without(j, "schema_version")).status().code(),
            Code::kInvalid);
  Json bad = j;
  bad.set("schema_version", Json::number(99));
  EXPECT_EQ(wal_record_from_json(bad).status().code(), Code::kInvalid);
}

TEST(Serialize, MalformedInputNeverAborts) {
  // Hostile-input corpus: every parser entry point must return a typed
  // error — never crash, abort, or hang — on arbitrary bytes.
  const std::vector<std::string> corpus = {
      "",
      " ",
      "{",
      "}",
      "[",
      "null",
      "true",
      "42",
      "\"string\"",
      "nan",
      "{\"application\":",
      "{\"application\":{\"kernels\":42}}",
      "{\"application\":{\"kernels\":[{\"wcet_ms\":\"fast\"}]}}",
      "{\"platform\":{\"fpgas\":-3}}",
      "{\"platform\":{\"fpgas\":1e308}}",
      "{\"events\":\"no\"}",
      "{\"platform\":{},\"events\":[{\"type\":\"warp\"}]}",
      "{\"schema_version\":\"one\"}",
      std::string(256, '['),
      std::string(256, '{'),
      "{\"a\":\"\\u12\"}",
      "{\"a\":\"unterminated",
      "\xff\xfe\x00garbage",
  };
  for (const std::string& text : corpus) {
    SCOPED_TRACE(text.substr(0, 32));
    EXPECT_FALSE(problem_from_text(text).is_ok());
    EXPECT_FALSE(trace_from_text(text).is_ok());
    auto doc = Json::parse(text);
    if (doc.is_ok()) {
      // Parsable but wrong-shaped documents must fail typed too.
      EXPECT_FALSE(event_from_json(doc.value()).is_ok());
      EXPECT_FALSE(wal_record_from_json(doc.value()).is_ok());
    }
  }
}

TEST(Serialize, EventOutcomeKeepsThePr7BytePrefix) {
  // The PR-8 consolidation into solve/cache/diff sections must not move
  // a single byte of the historical flat wire shape: every key up to
  // relax_hits serializes exactly as PR 7 did, the migration diff is
  // strictly appended, and the warm-path allocation counter is strictly
  // appended after that. Byte-comparing the whole dump pins all three.
  service::EventOutcome o;
  o.sequence = 7;
  o.type = service::Event::Type::kAddPipeline;
  o.id = "p1";
  o.active_pipelines = 2;
  o.solve.warm_started = true;
  o.solve.ii = 1.5;
  o.solve.phi = 0.5;
  o.solve.goal = 2.0;
  o.solve.totals = {2, 1};
  o.solve.nodes = 12;
  o.cache.delta = service::CompositeDelta::kStructural;
  o.cache.gp_compiles = 1;
  o.cache.gp_patches = 2;
  o.cache.model_hits = 3;
  o.cache.model_misses = 4;
  o.cache.relax_hits = 5;
  o.diff.computed = true;
  o.diff.cus_moved = 3;
  o.diff.pipelines_disturbed = 1;
  o.diff.goal_regret = 0.25;
  o.diff.stability_applied = true;
  o.warm_allocs = 6;
  EXPECT_EQ(to_json(o).dump(),
            "{\"seq\":7,\"type\":\"add\",\"id\":\"p1\",\"status\":\"ok\","
            "\"solve_status\":\"ok\",\"active\":2,\"warm\":true,"
            "\"ii_ms\":1.5,\"phi\":0.5,\"goal\":2,\"totals\":[2,1],"
            "\"nodes\":12,\"delta\":\"structural\",\"gp_compiles\":1,"
            "\"gp_patches\":2,\"model_hits\":3,\"model_misses\":4,"
            "\"relax_hits\":5,\"diff\":{\"computed\":true,\"cus_moved\":3,"
            "\"disturbed\":1,\"goal_regret\":0.25,"
            "\"stability_applied\":true,\"budget_exceeded\":false},"
            "\"warm_allocs\":6}");

  // Targetless events (resize) still omit "id", as PR 7 did.
  service::EventOutcome bare;
  bare.type = service::Event::Type::kResizePlatform;
  const std::string dump = to_json(bare).dump();
  EXPECT_EQ(dump.find("\"id\""), std::string::npos);
  EXPECT_EQ(dump.rfind("{\"seq\":0,\"type\":\"resize\",\"status\":\"ok\"", 0),
            0u);
}

TEST(Serialize, WalSnapshotPlacementsRoundTrip) {
  service::WalSnapshot snapshot;
  snapshot.sequence = 12;
  snapshot.platform = core::Platform{"pool", 2};
  service::PipelineSpec pipe;
  pipe.id = "p0";
  pipe.app.kernels = {test::make_kernel("a", 8.0, 10.0, 20.0, 5.0)};
  snapshot.pipelines = {pipe};
  service::PipelinePlacement record;
  record.id = "p0";
  record.rows = {{2, 1}};
  snapshot.placements = {record};

  auto parsed = wal_snapshot_from_json(to_json(snapshot));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().placements.size(), 1u);
  EXPECT_EQ(parsed.value().placements[0].id, "p0");
  EXPECT_EQ(parsed.value().placements[0].rows,
            (std::vector<std::vector<int>>{{2, 1}}));
  // Round trip is lossless byte-wise, too.
  EXPECT_EQ(to_json(parsed.value()).dump(), to_json(snapshot).dump());

  // Pre-PR-8 snapshots carry no ledger: parse to an empty one.
  Json legacy = to_json(snapshot);
  legacy.set("placements", Json::array());
  auto old = wal_snapshot_from_json(legacy);
  ASSERT_TRUE(old.is_ok());
  EXPECT_TRUE(old.value().placements.empty());

  // A corrupt ledger (negative count) is rejected, not clamped.
  Json bad_row = Json::array();
  bad_row.push_back(Json::number(-1));
  Json bad_rows = Json::array();
  bad_rows.push_back(std::move(bad_row));
  Json bad_placement = Json::object();
  bad_placement.set("id", Json::string("p0"));
  bad_placement.set("rows", std::move(bad_rows));
  Json bad_list = Json::array();
  bad_list.push_back(std::move(bad_placement));
  Json corrupt = to_json(snapshot);
  corrupt.set("placements", std::move(bad_list));
  EXPECT_FALSE(wal_snapshot_from_json(corrupt).is_ok());
}

TEST(Serialize, OccupancyJsonShape) {
  // The wire shape GET /v1/occupancy is built from.
  service::PipelinePlacement p;
  p.id = "p0";
  p.rows = {{1, 0}, {2, 3}};
  EXPECT_EQ(to_json(p).dump(),
            "{\"id\":\"p0\",\"cus\":6,\"rows\":[[1,0],[2,3]]}");

  service::OccupancyTracker empty;
  EXPECT_EQ(to_json(empty).dump(),
            "{\"valid\":false,\"devices\":[],\"placements\":[]}");
}

}  // namespace
}  // namespace mfa::io
