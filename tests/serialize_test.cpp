#include <cstdio>

#include <gtest/gtest.h>

#include "hls/paper.hpp"
#include "io/serialize.hpp"
#include "testutil.hpp"

namespace mfa::io {
namespace {

using core::Problem;
using core::Resource;
using test::tiny_problem;

TEST(Serialize, ProblemRoundTrip) {
  const Problem original = tiny_problem();
  const std::string text = to_json(original).dump(2);
  auto parsed = problem_from_text(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Problem& p = parsed.value();
  EXPECT_EQ(p.app.name, original.app.name);
  ASSERT_EQ(p.num_kernels(), original.num_kernels());
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    EXPECT_EQ(p.app.kernels[k].name, original.app.kernels[k].name);
    EXPECT_DOUBLE_EQ(p.app.kernels[k].wcet_ms,
                     original.app.kernels[k].wcet_ms);
    EXPECT_TRUE(p.app.kernels[k].res == original.app.kernels[k].res);
    EXPECT_DOUBLE_EQ(p.app.kernels[k].bw, original.app.kernels[k].bw);
  }
  EXPECT_EQ(p.num_fpgas(), original.num_fpgas());
  EXPECT_DOUBLE_EQ(p.resource_fraction, original.resource_fraction);
  EXPECT_DOUBLE_EQ(p.alpha, original.alpha);
  EXPECT_DOUBLE_EQ(p.beta, original.beta);
}

TEST(Serialize, PaperCaseRoundTripValidates) {
  Problem original = hls::paper::case_vgg_8fpga();
  original.resource_fraction = 0.61;
  auto parsed = problem_from_text(to_json(original).dump());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().validate().is_ok());
  EXPECT_DOUBLE_EQ(parsed.value().beta, 50.0);
}

TEST(Serialize, DefaultsApplyForOptionalFields) {
  const char* minimal = R"({
    "application": {"kernels": [{"name": "k", "wcet_ms": 2.0}]},
    "platform": {"fpgas": 3}
  })";
  auto parsed = problem_from_text(minimal);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Problem& p = parsed.value();
  EXPECT_EQ(p.num_fpgas(), 3);
  EXPECT_DOUBLE_EQ(p.platform.capacity[Resource::kDsp], 100.0);
  EXPECT_DOUBLE_EQ(p.platform.bw_capacity, 100.0);
  EXPECT_DOUBLE_EQ(p.resource_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.alpha, 1.0);
  EXPECT_DOUBLE_EQ(p.beta, 0.0);
  EXPECT_DOUBLE_EQ(p.app.kernels[0].bw, 0.0);
}

TEST(Serialize, MissingRequiredFieldsReportPaths) {
  auto no_app = problem_from_text(R"({"platform": {"fpgas": 1}})");
  EXPECT_EQ(no_app.status().code(), Code::kInvalid);
  EXPECT_NE(no_app.status().message().find("application"),
            std::string::npos);

  auto no_wcet = problem_from_text(
      R"({"application": {"kernels": [{"name": "k"}]},
          "platform": {"fpgas": 1}})");
  EXPECT_EQ(no_wcet.status().code(), Code::kInvalid);
  EXPECT_NE(no_wcet.status().message().find("wcet_ms"), std::string::npos);

  auto empty_kernels = problem_from_text(
      R"({"application": {"kernels": []}, "platform": {"fpgas": 1}})");
  EXPECT_EQ(empty_kernels.status().code(), Code::kInvalid);

  auto bad_fpgas = problem_from_text(
      R"({"application": {"kernels": [{"name":"k","wcet_ms":1}]},
          "platform": {"fpgas": 0}})");
  EXPECT_EQ(bad_fpgas.status().code(), Code::kInvalid);
}

TEST(Serialize, AllocationJsonCarriesMetrics) {
  Problem p = tiny_problem();
  core::Allocation a(p);
  a.set_cu(0, 0, 2);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  const Json j = to_json(a);
  EXPECT_DOUBLE_EQ(j.find("ii_ms")->as_number(), a.ii());
  EXPECT_DOUBLE_EQ(j.find("phi")->as_number(), a.phi());
  EXPECT_TRUE(j.find("feasible")->as_bool());
  const Json* matrix = j.find("matrix");
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix->size(), p.num_kernels());
  EXPECT_DOUBLE_EQ(matrix->at(0).at(0).as_number(), 2.0);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mfa_serialize_test.json";
  const Problem original = tiny_problem();
  ASSERT_TRUE(write_file(path, to_json(original).dump(2)).is_ok());
  auto text = read_file(path);
  ASSERT_TRUE(text.is_ok());
  auto parsed = problem_from_text(text.value());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().app.name, original.app.name);
  std::remove(path.c_str());
}

TEST(Serialize, ReadMissingFileFails) {
  auto r = read_file("/nonexistent/path/nope.json");
  EXPECT_EQ(r.status().code(), Code::kInvalid);
}

}  // namespace
}  // namespace mfa::io
