#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "hls/paper.hpp"
#include "io/serialize.hpp"
#include "testutil.hpp"

namespace mfa::io {
namespace {

using core::Problem;
using core::Resource;
using test::tiny_problem;

TEST(Serialize, ProblemRoundTrip) {
  const Problem original = tiny_problem();
  const std::string text = to_json(original).dump(2);
  auto parsed = problem_from_text(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Problem& p = parsed.value();
  EXPECT_EQ(p.app.name, original.app.name);
  ASSERT_EQ(p.num_kernels(), original.num_kernels());
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    EXPECT_EQ(p.app.kernels[k].name, original.app.kernels[k].name);
    EXPECT_DOUBLE_EQ(p.app.kernels[k].wcet_ms,
                     original.app.kernels[k].wcet_ms);
    EXPECT_TRUE(p.app.kernels[k].res == original.app.kernels[k].res);
    EXPECT_DOUBLE_EQ(p.app.kernels[k].bw, original.app.kernels[k].bw);
  }
  EXPECT_EQ(p.num_fpgas(), original.num_fpgas());
  EXPECT_DOUBLE_EQ(p.resource_fraction, original.resource_fraction);
  EXPECT_DOUBLE_EQ(p.alpha, original.alpha);
  EXPECT_DOUBLE_EQ(p.beta, original.beta);
}

TEST(Serialize, PaperCaseRoundTripValidates) {
  Problem original = hls::paper::case_vgg_8fpga();
  original.resource_fraction = 0.61;
  auto parsed = problem_from_text(to_json(original).dump());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().validate().is_ok());
  EXPECT_DOUBLE_EQ(parsed.value().beta, 50.0);
}

TEST(Serialize, DefaultsApplyForOptionalFields) {
  const char* minimal = R"({
    "application": {"kernels": [{"name": "k", "wcet_ms": 2.0}]},
    "platform": {"fpgas": 3}
  })";
  auto parsed = problem_from_text(minimal);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Problem& p = parsed.value();
  EXPECT_EQ(p.num_fpgas(), 3);
  EXPECT_DOUBLE_EQ(p.platform.capacity[Resource::kDsp], 100.0);
  EXPECT_DOUBLE_EQ(p.platform.bw_capacity, 100.0);
  EXPECT_DOUBLE_EQ(p.resource_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.alpha, 1.0);
  EXPECT_DOUBLE_EQ(p.beta, 0.0);
  EXPECT_DOUBLE_EQ(p.app.kernels[0].bw, 0.0);
}

TEST(Serialize, MissingRequiredFieldsReportPaths) {
  auto no_app = problem_from_text(R"({"platform": {"fpgas": 1}})");
  EXPECT_EQ(no_app.status().code(), Code::kInvalid);
  EXPECT_NE(no_app.status().message().find("application"),
            std::string::npos);

  auto no_wcet = problem_from_text(
      R"({"application": {"kernels": [{"name": "k"}]},
          "platform": {"fpgas": 1}})");
  EXPECT_EQ(no_wcet.status().code(), Code::kInvalid);
  EXPECT_NE(no_wcet.status().message().find("wcet_ms"), std::string::npos);

  auto empty_kernels = problem_from_text(
      R"({"application": {"kernels": []}, "platform": {"fpgas": 1}})");
  EXPECT_EQ(empty_kernels.status().code(), Code::kInvalid);

  auto bad_fpgas = problem_from_text(
      R"({"application": {"kernels": [{"name":"k","wcet_ms":1}]},
          "platform": {"fpgas": 0}})");
  EXPECT_EQ(bad_fpgas.status().code(), Code::kInvalid);
}

TEST(Serialize, AllocationJsonCarriesMetrics) {
  Problem p = tiny_problem();
  core::Allocation a(p);
  a.set_cu(0, 0, 2);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  const Json j = to_json(a);
  EXPECT_DOUBLE_EQ(j.find("ii_ms")->as_number(), a.ii());
  EXPECT_DOUBLE_EQ(j.find("phi")->as_number(), a.phi());
  EXPECT_TRUE(j.find("feasible")->as_bool());
  const Json* matrix = j.find("matrix");
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix->size(), p.num_kernels());
  EXPECT_DOUBLE_EQ(matrix->at(0).at(0).as_number(), 2.0);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mfa_serialize_test.json";
  const Problem original = tiny_problem();
  ASSERT_TRUE(write_file(path, to_json(original).dump(2)).is_ok());
  auto text = read_file(path);
  ASSERT_TRUE(text.is_ok());
  auto parsed = problem_from_text(text.value());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().app.name, original.app.name);
  std::remove(path.c_str());
}

TEST(Serialize, ReadMissingFileFails) {
  auto r = read_file("/nonexistent/path/nope.json");
  EXPECT_EQ(r.status().code(), Code::kInvalid);
}

// ---- schema_version: writers stamp it, readers accept the current
// version and legacy v0 (no field), and reject anything else. ------------

/// Copy of an object with one member removed (Json has no erase).
Json without(const Json& j, std::string_view key) {
  Json out = Json::object();
  for (const auto& [k, v] : j.members()) {
    if (k != key) out.set(k, v);
  }
  return out;
}

scenario::Trace tiny_trace() {
  scenario::Trace trace;
  const Problem p = tiny_problem();
  trace.platform = p.platform;
  trace.events.push_back(
      service::Event::add(service::PipelineSpec{"p0", p.app, 1.0}, 0.5));
  trace.events.push_back(service::Event::remove("p0", 2.0));
  return trace;
}

TEST(Serialize, SchemaVersionStampedOnWrite) {
  const Json problem = to_json(tiny_problem());
  ASSERT_NE(problem.find("schema_version"), nullptr);
  EXPECT_EQ(problem.find("schema_version")->as_number(), kSchemaVersion);
  EXPECT_TRUE(problem_from_json(problem).is_ok());

  const Json trace = to_json(tiny_trace());
  ASSERT_NE(trace.find("schema_version"), nullptr);
  EXPECT_EQ(trace.find("schema_version")->as_number(), kSchemaVersion);
  auto round = trace_from_json(trace);
  ASSERT_TRUE(round.is_ok());
  // v0 → v1 migration: re-serializing a legacy document stamps the
  // current version.
  auto legacy = trace_from_json(without(trace, "schema_version"));
  ASSERT_TRUE(legacy.is_ok());
  EXPECT_EQ(to_json(legacy.value()).find("schema_version")->as_number(),
            kSchemaVersion);
}

TEST(Serialize, LegacyV0DocumentsAccepted) {
  // Pre-versioning documents carry no schema_version; both readers
  // accept them (version is only *required* on the wire and in WALs).
  EXPECT_TRUE(
      problem_from_json(without(to_json(tiny_problem()), "schema_version"))
          .is_ok());
  EXPECT_TRUE(
      trace_from_json(without(to_json(tiny_trace()), "schema_version"))
          .is_ok());
}

TEST(Serialize, UnknownSchemaVersionRejected) {
  Json problem = to_json(tiny_problem());
  problem.set("schema_version", Json::number(99));
  EXPECT_EQ(problem_from_json(problem).status().code(), Code::kInvalid);
  problem.set("schema_version", Json::number(1.5));
  EXPECT_EQ(problem_from_json(problem).status().code(), Code::kInvalid);
  problem.set("schema_version", Json::string("1"));
  EXPECT_EQ(problem_from_json(problem).status().code(), Code::kInvalid);

  Json trace = to_json(tiny_trace());
  trace.set("schema_version", Json::number(99));
  EXPECT_EQ(trace_from_json(trace).status().code(), Code::kInvalid);
}

TEST(Serialize, WalRecordRequiresSchemaVersion) {
  service::WalRecord record;
  record.sequence = 7;
  record.event = tiny_trace().events.front();
  const Json j = to_json(record);
  auto ok = wal_record_from_json(j);
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value().sequence, 7u);
  // The WAL was born versioned: a record without the field is corrupt,
  // not legacy.
  EXPECT_EQ(wal_record_from_json(without(j, "schema_version")).status().code(),
            Code::kInvalid);
  Json bad = j;
  bad.set("schema_version", Json::number(99));
  EXPECT_EQ(wal_record_from_json(bad).status().code(), Code::kInvalid);
}

TEST(Serialize, MalformedInputNeverAborts) {
  // Hostile-input corpus: every parser entry point must return a typed
  // error — never crash, abort, or hang — on arbitrary bytes.
  const std::vector<std::string> corpus = {
      "",
      " ",
      "{",
      "}",
      "[",
      "null",
      "true",
      "42",
      "\"string\"",
      "nan",
      "{\"application\":",
      "{\"application\":{\"kernels\":42}}",
      "{\"application\":{\"kernels\":[{\"wcet_ms\":\"fast\"}]}}",
      "{\"platform\":{\"fpgas\":-3}}",
      "{\"platform\":{\"fpgas\":1e308}}",
      "{\"events\":\"no\"}",
      "{\"platform\":{},\"events\":[{\"type\":\"warp\"}]}",
      "{\"schema_version\":\"one\"}",
      std::string(256, '['),
      std::string(256, '{'),
      "{\"a\":\"\\u12\"}",
      "{\"a\":\"unterminated",
      "\xff\xfe\x00garbage",
  };
  for (const std::string& text : corpus) {
    SCOPED_TRACE(text.substr(0, 32));
    EXPECT_FALSE(problem_from_text(text).is_ok());
    EXPECT_FALSE(trace_from_text(text).is_ok());
    auto doc = Json::parse(text);
    if (doc.is_ok()) {
      // Parsable but wrong-shaped documents must fail typed too.
      EXPECT_FALSE(event_from_json(doc.value()).is_ok());
      EXPECT_FALSE(wal_record_from_json(doc.value()).is_ok());
    }
  }
}

}  // namespace
}  // namespace mfa::io
