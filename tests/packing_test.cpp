#include <random>

#include <gtest/gtest.h>

#include "solver/packing.hpp"
#include "testutil.hpp"

namespace mfa::solver {
namespace {

using core::Platform;
using core::Problem;
using test::make_kernel;
using test::tiny_problem;

Budget unlimited() { return Budget(); }

TEST(MinChunks, CapacityForcedSplitting) {
  Problem p;
  p.app.kernels = {make_kernel("k", 1.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"4", 4};
  // 30% per CU within 100% cap → 3 per FPGA.
  EXPECT_EQ(min_chunks(p, 0, 3), 1);
  EXPECT_EQ(min_chunks(p, 0, 4), 2);
  EXPECT_EQ(min_chunks(p, 0, 7), 3);
  EXPECT_EQ(min_chunks(p, 0, 0), 0);
}

TEST(PhiLowerBound, MostUnequalSplit) {
  Problem p;
  p.app.kernels = {make_kernel("k", 1.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"4", 4};
  // 3 CUs on one FPGA: 3/4.
  EXPECT_NEAR(phi_lower_bound(p, 0, 3), 0.75, 1e-12);
  // 4 CUs must split 3+1: 3/4 + 1/2.
  EXPECT_NEAR(phi_lower_bound(p, 0, 4), 0.75 + 0.5, 1e-12);
  // 7 CUs split 3+3+1.
  EXPECT_NEAR(phi_lower_bound(p, 0, 7), 0.75 + 0.75 + 0.5, 1e-12);
}

TEST(PackingSolver, TrivialFeasible) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = unlimited();
  PackingResult r = packer.pack({1, 1, 1}, PackingMode::kFeasibility, budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_TRUE(r.allocation->feasible());
}

TEST(PackingSolver, DetectsPooledInfeasibility) {
  Problem p = tiny_problem();  // cap 80% per FPGA, DSP 20/15/10 per CU
  PackingSolver packer(p);
  Budget budget = unlimited();
  // 20 CUs of kernel a → 400% DSP ≫ 160% pooled.
  PackingResult r = packer.pack({20, 1, 1}, PackingMode::kFeasibility,
                                budget);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
}

TEST(PackingSolver, DetectsFragmentationInfeasibility) {
  // Two kernels of 60% DSP each: pooled 120 ≤ 2×100 but each FPGA fits
  // only one — three CUs of either kernel cannot pack.
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 0.0, 60.0, 0.0),
                   make_kernel("b", 1.0, 0.0, 60.0, 0.0)};
  p.platform = Platform{"2", 2};
  PackingSolver packer(p);
  Budget budget = unlimited();
  EXPECT_TRUE(
      packer.pack({1, 1}, PackingMode::kFeasibility, budget).feasible);
  EXPECT_FALSE(
      packer.pack({2, 1}, PackingMode::kFeasibility, budget).feasible);
}

TEST(PackingSolver, BandwidthLimitsPacking) {
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 1.0, 1.0, 40.0)};
  p.platform = Platform{"2", 2};
  PackingSolver packer(p);
  Budget budget = unlimited();
  // 2 CUs per FPGA by bandwidth (2×40 ≤ 100 < 3×40) → 4 fit, 5 do not.
  EXPECT_TRUE(
      packer.pack({4}, PackingMode::kFeasibility, budget).feasible);
  EXPECT_FALSE(
      packer.pack({5}, PackingMode::kFeasibility, budget).feasible);
}

TEST(PackingSolver, MinSpreadingPrefersOneFpga) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = unlimited();
  PackingResult r =
      packer.pack({2, 1, 1}, PackingMode::kMinSpreading, budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  // Everything fits on one FPGA: φ = max_k N_k/(1+N_k) = 2/3.
  EXPECT_NEAR(r.phi, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(r.allocation->fpgas_used_by(0), 1);
}

TEST(PackingSolver, MinSpreadingMatchesForcedSplit) {
  // 4 CUs of a 30% kernel on 100% FPGAs: must split 3+1 at best.
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"2", 2};
  PackingSolver packer(p);
  Budget budget = unlimited();
  PackingResult r = packer.pack({4}, PackingMode::kMinSpreading, budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.phi, 0.75 + 0.5, 1e-12);
}

TEST(PackingSolver, SpreadingNeverBelowStaticBound) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = unlimited();
  const std::vector<int> totals{3, 2, 2};
  PackingResult r = packer.pack(totals, PackingMode::kMinSpreading, budget);
  ASSERT_TRUE(r.feasible);
  double lb = 0.0;
  for (std::size_t k = 0; k < totals.size(); ++k) {
    lb = std::max(lb, phi_lower_bound(p, k, totals[k]));
  }
  EXPECT_GE(r.phi, lb - 1e-9);
}

TEST(PackingSolver, BudgetAbortsAreReported) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = Budget::nodes_only(1);
  PackingResult r =
      packer.pack({3, 2, 2}, PackingMode::kMinSpreading, budget);
  EXPECT_FALSE(r.proved_optimal);
}

TEST(PackingSolver, ZeroTotalsAllowed) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = unlimited();
  PackingResult r = packer.pack({0, 1, 0}, PackingMode::kMinSpreading,
                                budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.allocation->total_cu(0), 0);
  EXPECT_EQ(r.allocation->total_cu(1), 1);
}

/// The rows of an allocation in StabilityOptions::reference layout.
std::vector<std::vector<int>> rows_of(const core::Allocation& a) {
  std::vector<std::vector<int>> rows(a.num_kernels());
  for (std::size_t k = 0; k < a.num_kernels(); ++k) {
    rows[k].resize(static_cast<std::size_t>(a.num_fpgas()));
    for (int f = 0; f < a.num_fpgas(); ++f) {
      rows[k][static_cast<std::size_t>(f)] = a.cu(k, f);
    }
  }
  return rows;
}

TEST(PackingStability, NullStabilityMatchesUnconstrained) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget b1 = unlimited();
  Budget b2 = unlimited();
  const PackingResult plain =
      packer.pack({3, 2, 2}, PackingMode::kMinSpreading, b1);
  const PackingResult with_null = packer.pack(
      {3, 2, 2}, PackingMode::kMinSpreading, b2, /*stability=*/nullptr);
  ASSERT_TRUE(plain.feasible);
  ASSERT_TRUE(with_null.feasible);
  EXPECT_EQ(plain.phi, with_null.phi);  // bit-identical search
  EXPECT_EQ(rows_of(*plain.allocation), rows_of(*with_null.allocation));
}

TEST(PackingStability, UnconstrainedReferenceMatchesPlainSearch) {
  // Budgets off + zero cost: the stability bookkeeping must not perturb
  // the search result even with a reference present.
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget b1 = unlimited();
  const PackingResult plain =
      packer.pack({3, 2, 2}, PackingMode::kMinSpreading, b1);
  ASSERT_TRUE(plain.feasible);
  StabilityOptions stab;
  stab.reference = rows_of(*plain.allocation);
  std::rotate(stab.reference.begin(), stab.reference.begin() + 1,
              stab.reference.end());  // some other incumbent
  Budget b2 = unlimited();
  const PackingResult r = packer.pack(
      {3, 2, 2}, PackingMode::kMinSpreading, b2, &stab);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.phi, plain.phi);
  EXPECT_EQ(rows_of(*r.allocation), rows_of(*plain.allocation));
}

TEST(PackingStability, ZeroBudgetsReproduceTheReference) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget b1 = unlimited();
  const PackingResult incumbent =
      packer.pack({3, 2, 2}, PackingMode::kMinSpreading, b1);
  ASSERT_TRUE(incumbent.feasible);

  StabilityOptions stab;
  stab.reference = rows_of(*incumbent.allocation);
  stab.max_moves = 0;
  stab.max_disturbed = 0;
  Budget b2 = unlimited();
  const PackingResult r = packer.pack(
      {3, 2, 2}, PackingMode::kMinSpreading, b2, &stab);
  ASSERT_TRUE(r.feasible);
  // Same totals and zero torn CUs force the rows to match exactly.
  EXPECT_EQ(r.cus_moved, 0);
  EXPECT_EQ(r.disturbed, 0);
  EXPECT_EQ(rows_of(*r.allocation), rows_of(*incumbent.allocation));
}

TEST(PackingStability, ShrinkingTotalsAgainstZeroMovesIsInfeasible) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget b1 = unlimited();
  const PackingResult incumbent =
      packer.pack({3, 2, 2}, PackingMode::kMinSpreading, b1);
  ASSERT_TRUE(incumbent.feasible);

  // Kernel 0 shrinks 3 → 2: at least one CU must be torn down wherever
  // the survivors sit, so a zero-move budget has no feasible placement.
  StabilityOptions stab;
  stab.reference = rows_of(*incumbent.allocation);
  stab.max_moves = 0;
  Budget b2 = unlimited();
  const PackingResult r = packer.pack(
      {2, 2, 2}, PackingMode::kMinSpreading, b2, &stab);
  EXPECT_FALSE(r.feasible);

  // One allowed move makes it feasible again, and the report says so.
  stab.max_moves = 1;
  Budget b3 = unlimited();
  const PackingResult loose = packer.pack(
      {2, 2, 2}, PackingMode::kMinSpreading, b3, &stab);
  ASSERT_TRUE(loose.feasible);
  EXPECT_EQ(loose.cus_moved, 1);
  EXPECT_LE(loose.disturbed, 1);
}

TEST(PackingStability, ExemptGroupMovesForFree) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget b1 = unlimited();
  const PackingResult incumbent =
      packer.pack({3, 2, 2}, PackingMode::kMinSpreading, b1);
  ASSERT_TRUE(incumbent.feasible);

  // Same shrink as above, but kernel 0 belongs to the exempt group (it
  // is the event's own target): its tear-down is not counted.
  StabilityOptions stab;
  stab.reference = rows_of(*incumbent.allocation);
  stab.group_of = {0, 1, 1};
  stab.exempt_group = 0;
  stab.max_moves = 0;
  stab.max_disturbed = 0;
  Budget b2 = unlimited();
  const PackingResult r = packer.pack(
      {2, 2, 2}, PackingMode::kMinSpreading, b2, &stab);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cus_moved, 0);
  EXPECT_EQ(r.disturbed, 0);
  // The non-exempt kernels stayed exactly in place.
  EXPECT_EQ(rows_of(*r.allocation)[1], stab.reference[1]);
  EXPECT_EQ(rows_of(*r.allocation)[2], stab.reference[2]);
}

TEST(PackingStability, EmptyReferenceRowIsExempt) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget b1 = unlimited();
  const PackingResult incumbent =
      packer.pack({3, 2, 2}, PackingMode::kMinSpreading, b1);
  ASSERT_TRUE(incumbent.feasible);

  // A new arrival has no incumbent placement: an empty row never
  // counts, whatever it forces the others to do stays the constraint.
  StabilityOptions stab;
  stab.reference = rows_of(*incumbent.allocation);
  stab.reference[0].clear();
  stab.max_moves = 0;
  stab.max_disturbed = 0;
  Budget b2 = unlimited();
  const PackingResult r = packer.pack(
      {2, 2, 2}, PackingMode::kMinSpreading, b2, &stab);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cus_moved, 0);
  EXPECT_EQ(r.disturbed, 0);
}

TEST(PackingStability, MoveCostPrefersTheIncumbentPlacement) {
  // One kernel, 2 CUs on 2 FPGAs: spreading 1+1 minimizes φ (2·1/2 = 1
  // over max — per-kernel φ_k = 1/2 + 1/2 = 1) vs 2 on one FPGA
  // (2/3 < 1)... so kMinSpreading puts both on one FPGA. Seed the
  // reference on the OTHER FPGA: with zero cost the search is free to
  // land anywhere φ-optimal; a hefty move cost must pull it onto the
  // reference device.
  Problem p;
  p.app.kernels = {make_kernel("k", 8.0, 10.0, 20.0, 5.0)};
  p.platform = Platform{"2", 2};
  PackingSolver packer(p);

  StabilityOptions stab;
  stab.reference = {{0, 2}};  // incumbent holds both CUs on FPGA 1
  stab.move_cost = 10.0;
  Budget b1 = unlimited();
  const PackingResult r =
      packer.pack({2}, PackingMode::kMinSpreading, b1, &stab);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cus_moved, 0);
  EXPECT_EQ(r.allocation->cu(0, 1), 2);  // stayed on the incumbent FPGA
  // φ was not sacrificed: 2-on-one-FPGA is φ-optimal on either device.
  Budget b2 = unlimited();
  const PackingResult plain =
      packer.pack({2}, PackingMode::kMinSpreading, b2);
  EXPECT_EQ(r.phi, plain.phi);
}

/// Oracle: exhaustive enumeration of all placements for tiny instances.
/// Returns the minimal φ, or nullopt if no feasible placement exists.
std::optional<double> brute_force_min_phi(const Problem& p,
                                          const std::vector<int>& totals) {
  const int fpgas = p.num_fpgas();
  const std::size_t kernels = totals.size();
  std::vector<std::vector<int>> counts(kernels,
                                       std::vector<int>(fpgas, 0));
  std::optional<double> best;

  // Enumerate compositions of each total across FPGAs, recursively.
  std::function<void(std::size_t, int, int)> rec_kernel_fpga;
  std::function<void(std::size_t)> rec_kernel = [&](std::size_t k) {
    if (k == kernels) {
      // Check capacity.
      for (int f = 0; f < fpgas; ++f) {
        core::ResourceVec used;
        double bw = 0.0;
        for (std::size_t j = 0; j < kernels; ++j) {
          used += p.app.kernels[j].res * static_cast<double>(counts[j][f]);
          bw += p.app.kernels[j].bw * counts[j][f];
        }
        if (!used.fits_within(p.cap(), 1e-9) || bw > p.bw_cap() + 1e-9) {
          return;
        }
      }
      double phi = 0.0;
      for (std::size_t j = 0; j < kernels; ++j) {
        double pk = 0.0;
        for (int f = 0; f < fpgas; ++f) {
          pk += static_cast<double>(counts[j][f]) / (1.0 + counts[j][f]);
        }
        phi = std::max(phi, pk);
      }
      if (!best || phi < *best) best = phi;
      return;
    }
    rec_kernel_fpga(k, 0, totals[k]);
  };
  rec_kernel_fpga = [&](std::size_t k, int f, int rem) {
    if (f == fpgas) {
      if (rem == 0) rec_kernel(k + 1);
      return;
    }
    for (int c = 0; c <= rem; ++c) {
      counts[k][f] = c;
      rec_kernel_fpga(k, f + 1, rem - c);
      counts[k][f] = 0;
    }
  };
  rec_kernel(0);
  return best;
}

/// Property: the branch-and-bound packing equals brute force on random
/// tiny instances — validating both the symmetry breaking and pruning.
class RandomPacking : public ::testing::TestWithParam<int> {};

TEST_P(RandomPacking, MatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 6151u);
  Problem p = test::random_problem(rng);
  std::uniform_int_distribution<int> tot(0, 3);
  std::vector<int> totals(p.num_kernels());
  for (int& t : totals) t = tot(rng);

  Budget budget = unlimited();
  PackingResult r =
      PackingSolver(p).pack(totals, PackingMode::kMinSpreading, budget);
  ASSERT_TRUE(r.proved_optimal);

  std::optional<double> oracle = brute_force_min_phi(p, totals);
  ASSERT_EQ(r.feasible, oracle.has_value());
  if (oracle) {
    EXPECT_NEAR(r.phi, *oracle, 1e-9);
    // The returned allocation must realize the reported φ and respect
    // the caps.
    EXPECT_NEAR(r.allocation->phi(), r.phi, 1e-12);
    for (std::size_t k = 0; k < totals.size(); ++k) {
      EXPECT_EQ(r.allocation->total_cu(k), totals[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPacking, ::testing::Range(1, 41));

}  // namespace
}  // namespace mfa::solver
