#include <random>

#include <gtest/gtest.h>

#include "solver/packing.hpp"
#include "testutil.hpp"

namespace mfa::solver {
namespace {

using core::Platform;
using core::Problem;
using test::make_kernel;
using test::tiny_problem;

Budget unlimited() { return Budget(); }

TEST(MinChunks, CapacityForcedSplitting) {
  Problem p;
  p.app.kernels = {make_kernel("k", 1.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"4", 4};
  // 30% per CU within 100% cap → 3 per FPGA.
  EXPECT_EQ(min_chunks(p, 0, 3), 1);
  EXPECT_EQ(min_chunks(p, 0, 4), 2);
  EXPECT_EQ(min_chunks(p, 0, 7), 3);
  EXPECT_EQ(min_chunks(p, 0, 0), 0);
}

TEST(PhiLowerBound, MostUnequalSplit) {
  Problem p;
  p.app.kernels = {make_kernel("k", 1.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"4", 4};
  // 3 CUs on one FPGA: 3/4.
  EXPECT_NEAR(phi_lower_bound(p, 0, 3), 0.75, 1e-12);
  // 4 CUs must split 3+1: 3/4 + 1/2.
  EXPECT_NEAR(phi_lower_bound(p, 0, 4), 0.75 + 0.5, 1e-12);
  // 7 CUs split 3+3+1.
  EXPECT_NEAR(phi_lower_bound(p, 0, 7), 0.75 + 0.75 + 0.5, 1e-12);
}

TEST(PackingSolver, TrivialFeasible) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = unlimited();
  PackingResult r = packer.pack({1, 1, 1}, PackingMode::kFeasibility, budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_TRUE(r.allocation->feasible());
}

TEST(PackingSolver, DetectsPooledInfeasibility) {
  Problem p = tiny_problem();  // cap 80% per FPGA, DSP 20/15/10 per CU
  PackingSolver packer(p);
  Budget budget = unlimited();
  // 20 CUs of kernel a → 400% DSP ≫ 160% pooled.
  PackingResult r = packer.pack({20, 1, 1}, PackingMode::kFeasibility,
                                budget);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
}

TEST(PackingSolver, DetectsFragmentationInfeasibility) {
  // Two kernels of 60% DSP each: pooled 120 ≤ 2×100 but each FPGA fits
  // only one — three CUs of either kernel cannot pack.
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 0.0, 60.0, 0.0),
                   make_kernel("b", 1.0, 0.0, 60.0, 0.0)};
  p.platform = Platform{"2", 2};
  PackingSolver packer(p);
  Budget budget = unlimited();
  EXPECT_TRUE(
      packer.pack({1, 1}, PackingMode::kFeasibility, budget).feasible);
  EXPECT_FALSE(
      packer.pack({2, 1}, PackingMode::kFeasibility, budget).feasible);
}

TEST(PackingSolver, BandwidthLimitsPacking) {
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 1.0, 1.0, 40.0)};
  p.platform = Platform{"2", 2};
  PackingSolver packer(p);
  Budget budget = unlimited();
  // 2 CUs per FPGA by bandwidth (2×40 ≤ 100 < 3×40) → 4 fit, 5 do not.
  EXPECT_TRUE(
      packer.pack({4}, PackingMode::kFeasibility, budget).feasible);
  EXPECT_FALSE(
      packer.pack({5}, PackingMode::kFeasibility, budget).feasible);
}

TEST(PackingSolver, MinSpreadingPrefersOneFpga) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = unlimited();
  PackingResult r =
      packer.pack({2, 1, 1}, PackingMode::kMinSpreading, budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  // Everything fits on one FPGA: φ = max_k N_k/(1+N_k) = 2/3.
  EXPECT_NEAR(r.phi, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(r.allocation->fpgas_used_by(0), 1);
}

TEST(PackingSolver, MinSpreadingMatchesForcedSplit) {
  // 4 CUs of a 30% kernel on 100% FPGAs: must split 3+1 at best.
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"2", 2};
  PackingSolver packer(p);
  Budget budget = unlimited();
  PackingResult r = packer.pack({4}, PackingMode::kMinSpreading, budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.phi, 0.75 + 0.5, 1e-12);
}

TEST(PackingSolver, SpreadingNeverBelowStaticBound) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = unlimited();
  const std::vector<int> totals{3, 2, 2};
  PackingResult r = packer.pack(totals, PackingMode::kMinSpreading, budget);
  ASSERT_TRUE(r.feasible);
  double lb = 0.0;
  for (std::size_t k = 0; k < totals.size(); ++k) {
    lb = std::max(lb, phi_lower_bound(p, k, totals[k]));
  }
  EXPECT_GE(r.phi, lb - 1e-9);
}

TEST(PackingSolver, BudgetAbortsAreReported) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = Budget::nodes_only(1);
  PackingResult r =
      packer.pack({3, 2, 2}, PackingMode::kMinSpreading, budget);
  EXPECT_FALSE(r.proved_optimal);
}

TEST(PackingSolver, ZeroTotalsAllowed) {
  Problem p = tiny_problem();
  PackingSolver packer(p);
  Budget budget = unlimited();
  PackingResult r = packer.pack({0, 1, 0}, PackingMode::kMinSpreading,
                                budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.allocation->total_cu(0), 0);
  EXPECT_EQ(r.allocation->total_cu(1), 1);
}

/// Oracle: exhaustive enumeration of all placements for tiny instances.
/// Returns the minimal φ, or nullopt if no feasible placement exists.
std::optional<double> brute_force_min_phi(const Problem& p,
                                          const std::vector<int>& totals) {
  const int fpgas = p.num_fpgas();
  const std::size_t kernels = totals.size();
  std::vector<std::vector<int>> counts(kernels,
                                       std::vector<int>(fpgas, 0));
  std::optional<double> best;

  // Enumerate compositions of each total across FPGAs, recursively.
  std::function<void(std::size_t, int, int)> rec_kernel_fpga;
  std::function<void(std::size_t)> rec_kernel = [&](std::size_t k) {
    if (k == kernels) {
      // Check capacity.
      for (int f = 0; f < fpgas; ++f) {
        core::ResourceVec used;
        double bw = 0.0;
        for (std::size_t j = 0; j < kernels; ++j) {
          used += p.app.kernels[j].res * static_cast<double>(counts[j][f]);
          bw += p.app.kernels[j].bw * counts[j][f];
        }
        if (!used.fits_within(p.cap(), 1e-9) || bw > p.bw_cap() + 1e-9) {
          return;
        }
      }
      double phi = 0.0;
      for (std::size_t j = 0; j < kernels; ++j) {
        double pk = 0.0;
        for (int f = 0; f < fpgas; ++f) {
          pk += static_cast<double>(counts[j][f]) / (1.0 + counts[j][f]);
        }
        phi = std::max(phi, pk);
      }
      if (!best || phi < *best) best = phi;
      return;
    }
    rec_kernel_fpga(k, 0, totals[k]);
  };
  rec_kernel_fpga = [&](std::size_t k, int f, int rem) {
    if (f == fpgas) {
      if (rem == 0) rec_kernel(k + 1);
      return;
    }
    for (int c = 0; c <= rem; ++c) {
      counts[k][f] = c;
      rec_kernel_fpga(k, f + 1, rem - c);
      counts[k][f] = 0;
    }
  };
  rec_kernel(0);
  return best;
}

/// Property: the branch-and-bound packing equals brute force on random
/// tiny instances — validating both the symmetry breaking and pruning.
class RandomPacking : public ::testing::TestWithParam<int> {};

TEST_P(RandomPacking, MatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 6151u);
  Problem p = test::random_problem(rng);
  std::uniform_int_distribution<int> tot(0, 3);
  std::vector<int> totals(p.num_kernels());
  for (int& t : totals) t = tot(rng);

  Budget budget = unlimited();
  PackingResult r =
      PackingSolver(p).pack(totals, PackingMode::kMinSpreading, budget);
  ASSERT_TRUE(r.proved_optimal);

  std::optional<double> oracle = brute_force_min_phi(p, totals);
  ASSERT_EQ(r.feasible, oracle.has_value());
  if (oracle) {
    EXPECT_NEAR(r.phi, *oracle, 1e-9);
    // The returned allocation must realize the reported φ and respect
    // the caps.
    EXPECT_NEAR(r.allocation->phi(), r.phi, 1e-12);
    for (std::size_t k = 0; k < totals.size(); ++k) {
      EXPECT_EQ(r.allocation->total_cu(k), totals[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPacking, ::testing::Range(1, 41));

}  // namespace
}  // namespace mfa::solver
