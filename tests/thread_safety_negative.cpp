// Negative-compile probe for the thread-safety annotations.
//
// This TU is built only under clang with MFA_THREAD_SAFETY, as an
// EXCLUDE_FROM_ALL object library whose build is a WILL_FAIL ctest
// entry: it reads MFA_GUARDED_BY state without holding the lock, so
// -Werror=thread-safety MUST reject it. If this file ever compiles,
// the annotation plumbing has gone soft (e.g. the macros expanded to
// nothing under clang) and the "analysis is actually on" guarantee is
// lost — which is exactly what the inverted test reports.

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    mfa::LockGuard lock(mutex_);
    ++value_;
  }

  // Deliberate violation: no lock held while reading value_.
  int read_unlocked() const { return value_; }

 private:
  mutable mfa::Mutex mutex_;
  int value_ MFA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int thread_safety_negative_probe() {
  Counter counter;
  counter.bump();
  return counter.read_unlocked();
}
