#include <gtest/gtest.h>

#include <cmath>

#include "sim/pipeline_sim.hpp"
#include "solver/exact.hpp"
#include "testutil.hpp"

namespace mfa::sim {
namespace {

using core::Allocation;
using core::Platform;
using core::Problem;
using test::make_kernel;
using test::tiny_problem;

TEST(PipelineSimulator, MeasuredIiMatchesModelWithoutContention) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 2);  // ET 4
  a.set_cu(1, 0, 3);  // ET 4
  a.set_cu(2, 1, 1);  // ET 4
  SimResult r = PipelineSimulator().run(a);
  EXPECT_NEAR(r.measured_ii_ms, a.ii(), 1e-9);
  EXPECT_NEAR(r.throughput_ips, 1000.0 / a.ii(), 1e-6);
  EXPECT_DOUBLE_EQ(r.max_throttle, 1.0);
}

TEST(PipelineSimulator, BottleneckStageDeterminesIi) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 1);  // ET 8
  a.set_cu(1, 0, 1);  // ET 12  ← bottleneck
  a.set_cu(2, 1, 1);  // ET 4
  SimResult r = PipelineSimulator().run(a);
  EXPECT_NEAR(r.measured_ii_ms, 12.0, 1e-9);
  // The bottleneck stage is (nearly) always busy; others are not.
  EXPECT_GT(r.stage_busy[1], 0.95);
  EXPECT_LT(r.stage_busy[2], 0.5);
}

TEST(PipelineSimulator, LatencyIsAtLeastSumOfStageTimes) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  SimResult r = PipelineSimulator().run(a);
  EXPECT_GE(r.pipeline_latency_ms, 8.0 + 12.0 + 4.0 - 1e-9);
}

TEST(PipelineSimulator, RejectsWindowWithOnePostWarmupImage) {
  // Regression: num_images == warmup_images + 1 used to pass the guard
  // but leaves zero completion gaps in the steady-state window, so
  // measured_ii_ms divided by zero into inf/NaN. The window now
  // requires at least two post-warmup images.
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  SimConfig cfg;
  cfg.num_images = 5;
  cfg.warmup_images = 4;
  EXPECT_DEATH(PipelineSimulator(cfg).run(a), "post-warmup");
}

TEST(PipelineSimulator, SmallestValidWindowYieldsFiniteStats) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  SimConfig cfg;
  cfg.num_images = 6;
  cfg.warmup_images = 4;  // exactly two post-warmup completions
  const SimResult r = PipelineSimulator(cfg).run(a);
  EXPECT_TRUE(std::isfinite(r.measured_ii_ms));
  EXPECT_TRUE(std::isfinite(r.throughput_ips));
  EXPECT_NEAR(r.measured_ii_ms, 12.0, 1e-9);  // bottleneck stage ET
}

TEST(PipelineSimulator, BandwidthThrottlingSlowsPipeline) {
  // Two concurrent stages on one FPGA each demanding 60 % BW: when both
  // are active the FPGA is oversubscribed (120 > 100) and throttles.
  Problem p;
  p.app.kernels = {make_kernel("a", 10.0, 1.0, 1.0, 60.0),
                   make_kernel("b", 10.0, 1.0, 1.0, 60.0)};
  p.platform = Platform{"1", 1};
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  // Note: this allocation violates eq. 10 (120 % > 100 %) — exactly the
  // situation the simulator exists to quantify.
  EXPECT_FALSE(a.feasible());
  SimResult r = PipelineSimulator().run(a);
  EXPECT_GT(r.measured_ii_ms, 10.0 * 1.1);
  EXPECT_GT(r.max_throttle, 1.1);
  EXPECT_GT(r.fpga_peak_bw[0], 100.0);
}

TEST(PipelineSimulator, FeasibleAllocationNeverThrottles) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 2);
  a.set_cu(1, 1, 2);
  a.set_cu(2, 0, 1);
  ASSERT_TRUE(a.feasible());
  SimResult r = PipelineSimulator().run(a);
  EXPECT_DOUBLE_EQ(r.max_throttle, 1.0);
  for (int f = 0; f < p.num_fpgas(); ++f) {
    EXPECT_LE(r.fpga_peak_bw[static_cast<std::size_t>(f)],
              p.bw_cap() + 1e-9);
  }
}

TEST(PipelineSimulator, DisablingBandwidthModelRemovesThrottle) {
  Problem p;
  p.app.kernels = {make_kernel("a", 10.0, 1.0, 1.0, 60.0),
                   make_kernel("b", 10.0, 1.0, 1.0, 60.0)};
  p.platform = Platform{"1", 1};
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  SimConfig cfg;
  cfg.model_bandwidth = false;
  SimResult r = PipelineSimulator(cfg).run(a);
  EXPECT_NEAR(r.measured_ii_ms, 10.0, 1e-9);
}

TEST(PipelineSimulator, ValidatesExactSolverPrediction) {
  // End-to-end: the solver's analytical II equals the simulator's
  // steady-state measurement for a feasible optimal allocation.
  Problem p = tiny_problem();
  p.beta = 0.0;
  auto r = solver::ExactSolver().solve(p);
  ASSERT_TRUE(r.is_ok());
  SimResult sim = PipelineSimulator().run(r.value().allocation);
  EXPECT_NEAR(sim.measured_ii_ms, r.value().ii, 1e-6);
  EXPECT_DOUBLE_EQ(sim.max_throttle, 1.0);
}

TEST(PipelineSimulator, MakespanApproximatesImageCountTimesIi) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  SimConfig cfg;
  cfg.num_images = 100;
  cfg.warmup_images = 10;
  SimResult r = PipelineSimulator(cfg).run(a);
  // makespan ≈ fill latency + (N−1)·II.
  EXPECT_NEAR(r.makespan_ms, (8.0 + 12.0 + 4.0) + 99 * 12.0, 1e-6);
}

}  // namespace
}  // namespace mfa::sim
