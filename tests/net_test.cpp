// HTTP layer + wire API coverage. The parser tests feed bytes in
// adversarial shapes (split, pipelined, malformed, oversized); the
// server tests do real loopback round trips; the Api tests drive the
// transport-agnostic handler directly and assert the satellite
// guarantee that malformed JSON is a typed 400, never an abort.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "net/api.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "scenario/trace.hpp"
#include "service/shard_router.hpp"
#include "testutil.hpp"

namespace mfa::net {
namespace {

TEST(RequestParser, ParsesPostWithBody) {
  RequestParser parser;
  const std::string raw =
      "POST /v1/events HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 9\r\n"
      "\r\n"
      "{\"a\":1}\r\n";
  ASSERT_EQ(parser.feed(raw), RequestParser::State::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/events");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.body, "{\"a\":1}\r\n");
  ASSERT_NE(request.header("content-type"), nullptr);
  EXPECT_EQ(*request.header("content-type"), "application/json");
  EXPECT_TRUE(request.keep_alive());
}

TEST(RequestParser, ByteAtATimeFeedIsEquivalent) {
  const std::string raw =
      "GET /v1/stats HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nok";
  RequestParser parser;
  for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_EQ(parser.feed(std::string_view(&raw[i], 1)),
              RequestParser::State::kIncomplete)
        << "byte " << i;
  }
  ASSERT_EQ(parser.feed(std::string_view(&raw[raw.size() - 1], 1)),
            RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/v1/stats");
  EXPECT_EQ(parser.request().body, "ok");
}

TEST(RequestParser, ResetReplaysPipelinedBytes) {
  RequestParser parser;
  const std::string two =
      "GET /first HTTP/1.1\r\n\r\n"
      "GET /second HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(parser.feed(two), RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/first");
  parser.reset();
  // The second request was already buffered; reset() must surface it
  // without another feed.
  ASSERT_EQ(parser.state(), RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/second");
  EXPECT_FALSE(parser.request().keep_alive());
}

TEST(RequestParser, MalformedRequestLineIs400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("NOT A REQUEST\r\n\r\n"),
            RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, OversizedHeadIs431) {
  RequestParser parser{ParserLimits(/*head=*/64, /*body=*/1024)};
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw.append(200, 'x');
  ASSERT_EQ(parser.feed(raw), RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, OversizedBodyIs413) {
  RequestParser parser{ParserLimits(/*head=*/1024, /*body=*/16)};
  ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n"),
            RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParser, TransferEncodingIs501) {
  RequestParser parser;
  ASSERT_EQ(
      parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParser, UnsupportedVersionIs505) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/2.0\r\n\r\n"),
            RequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(Http, KeepAliveDefaults) {
  HttpRequest request;
  request.version = "HTTP/1.1";
  EXPECT_TRUE(request.keep_alive());
  request.headers.emplace_back("connection", "close");
  EXPECT_FALSE(request.keep_alive());
  HttpRequest old;
  old.version = "HTTP/1.0";
  EXPECT_FALSE(old.keep_alive());
  old.headers.emplace_back("connection", "keep-alive");
  EXPECT_TRUE(old.keep_alive());
}

TEST(Http, FormatResponseFramesBody) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"x\":1}\n";
  const std::string wire = format_response(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 8\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  // A client parser must accept exactly what the server emits.
  ResponseParser parser;
  ASSERT_EQ(parser.feed(wire), ResponseParser::State::kComplete);
  EXPECT_EQ(parser.status(), 200);
  EXPECT_EQ(parser.response().body, response.body);
}

TEST(HttpServer, LoopbackRoundTrip) {
  ServerConfig config;  // port 0 = ephemeral
  HttpServer server(config, [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "{\"echo\":\"" + request.target + "\"}\n";
    return response;
  });
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_NE(server.port(), 0);

  auto response = http_get("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(response.is_ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "{\"echo\":\"/ping\"}\n");

  // Several sequential requests against the same server instance.
  for (int i = 0; i < 3; ++i) {
    auto again = http_post("127.0.0.1", server.port(), "/post", "body");
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(again.value().body, "{\"echo\":\"/post\"}\n");
  }
  server.stop();
}

/// Sends raw bytes to the server and returns everything read until the
/// peer closes (the server closes after answering a malformed request).
std::string raw_round_trip(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string got;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
          static_cast<ssize_t>(bytes.size())) {
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      got.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return got;
}

TEST(HttpServer, MalformedRequestGetsParserErrorAndClose) {
  ServerConfig config;
  HttpServer server(config,
                    [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.start().is_ok());
  const std::string reply =
      raw_round_trip(server.port(), "THIS IS NOT HTTP\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.1 400", 0), 0u) << reply;
  const std::string old_version =
      raw_round_trip(server.port(), "GET / HTTP/2.0\r\n\r\n");
  EXPECT_EQ(old_version.rfind("HTTP/1.1 505", 0), 0u) << old_version;
  server.stop();
}

TEST(HttpServer, PipelinedRequestsAnswerInOrder) {
  ServerConfig config;
  HttpServer server(config, [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.target + "\n";
    return response;
  });
  ASSERT_TRUE(server.start().is_ok());
  // Two requests in one write; the second closes the connection, so
  // raw_round_trip's read-until-close collects both responses.
  const std::string reply = raw_round_trip(
      server.port(),
      "GET /one HTTP/1.1\r\n\r\n"
      "GET /two HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::size_t first = reply.find("/one\n");
  const std::size_t second = reply.find("/two\n");
  EXPECT_NE(first, std::string::npos) << reply;
  EXPECT_NE(second, std::string::npos) << reply;
  EXPECT_LT(first, second);
  server.stop();
}

/// Api fixture: a 2-shard router over a small pool, no sockets.
class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Platform platform{"pool", 3};
    service::RouterOptions options;
    options.shards = 2;
    auto r = service::ShardRouter::open(platform, options);
    ASSERT_TRUE(r.is_ok());
    router_ = std::move(r.value());
    api_ = std::make_unique<Api>(router_.get());
  }

  HttpResponse call(const std::string& method, const std::string& target,
                    const std::string& body = "") {
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    request.body = body;
    return api_->handle(request);
  }

  static std::string add_event_body(const std::string& id) {
    core::Application app;
    app.name = "app-" + id;
    app.kernels = {test::make_kernel("k0", 8.0, 10.0, 20.0, 5.0),
                   test::make_kernel("k1", 4.0, 5.0, 10.0, 8.0)};
    io::Json events = io::Json::array();
    events.push_back(
        io::to_json(service::Event::add(service::PipelineSpec{id, app, 1.0})));
    io::Json body = io::Json::object();
    body.set("schema_version", io::Json::number(io::kSchemaVersion));
    body.set("events", std::move(events));
    return body.dump();
  }

  std::unique_ptr<service::ShardRouter> router_;
  std::unique_ptr<Api> api_;
};

TEST_F(ApiTest, HealthzIsOk) {
  const HttpResponse response = call("GET", "/v1/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "{\"status\":\"ok\"}\n");
}

TEST_F(ApiTest, UnknownEndpointIs404) {
  EXPECT_EQ(call("GET", "/v2/healthz").status, 404);
  EXPECT_EQ(call("GET", "/").status, 404);
}

TEST_F(ApiTest, WrongMethodIs405) {
  EXPECT_EQ(call("GET", "/v1/events").status, 405);
  EXPECT_EQ(call("POST", "/v1/stats").status, 405);
  EXPECT_EQ(call("POST", "/v1/occupancy").status, 405);
}

TEST_F(ApiTest, OutcomesCarryTheMigrationDiff) {
  ASSERT_EQ(call("POST", "/v1/events", add_event_body("first")).status,
            200);
  // The second add has an incumbent to diff against.
  const HttpResponse response =
      call("POST", "/v1/events", add_event_body("second"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = io::Json::parse(response.body);
  ASSERT_TRUE(doc.is_ok());
  const io::Json* outcome = &doc.value().find("outcomes")->at(0);
  const io::Json* diff = outcome->find("diff");
  ASSERT_NE(diff, nullptr);
  for (const char* key : {"computed", "cus_moved", "disturbed",
                          "goal_regret", "stability_applied",
                          "budget_exceeded"}) {
    EXPECT_NE(diff->find(key), nullptr) << key;
  }
  EXPECT_TRUE(diff->find("computed")->as_bool());
}

TEST_F(ApiTest, OccupancyReportsTheLedgerPerShard) {
  // Empty pool: valid endpoint, invalid (cleared) ledgers.
  auto empty = io::Json::parse(call("GET", "/v1/occupancy").body);
  ASSERT_TRUE(empty.is_ok());
  EXPECT_EQ(empty.value().find("schema_version")->as_number(),
            static_cast<double>(io::kSchemaVersion));
  ASSERT_EQ(empty.value().find("shards")->size(), 2u);

  ASSERT_EQ(call("POST", "/v1/events", add_event_body("tenant-o")).status,
            200);
  auto doc = io::Json::parse(call("GET", "/v1/occupancy").body);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().find("active_pipelines")->as_number(), 1.0);
  const io::Json* shards = doc.value().find("shards");
  ASSERT_EQ(shards->size(), 2u);
  std::size_t valid_shards = 0;
  std::size_t placements = 0;
  for (std::size_t i = 0; i < shards->size(); ++i) {
    const io::Json& shard = shards->at(i);
    EXPECT_EQ(shard.find("shard")->as_number(), static_cast<double>(i));
    ASSERT_NE(shard.find("devices"), nullptr);
    ASSERT_NE(shard.find("placements"), nullptr);
    if (shard.find("valid")->as_bool()) ++valid_shards;
    placements += shard.find("placements")->size();
  }
  // The pipeline hashed to exactly one shard, whose ledger is live.
  EXPECT_EQ(valid_shards, 1u);
  ASSERT_EQ(placements, 1u);
}

TEST_F(ApiTest, StatsExposeStabilityCounters) {
  ASSERT_EQ(call("POST", "/v1/events", add_event_body("tenant-s")).status,
            200);
  auto stats = io::Json::parse(call("GET", "/v1/stats").body);
  ASSERT_TRUE(stats.is_ok());
  const io::Json* merged = stats.value().find("merged");
  ASSERT_NE(merged, nullptr);
  for (const char* key : {"cus_moved", "pipelines_disturbed",
                          "stability_repacks", "budget_exceeded"}) {
    ASSERT_NE(merged->find(key), nullptr) << key;
    EXPECT_GE(merged->find(key)->as_number(), 0.0) << key;
  }
}

TEST_F(ApiTest, ValidBatchRunsAndReturnsOutcomes) {
  const HttpResponse response =
      call("POST", "/v1/events", add_event_body("tenant-a"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = io::Json::parse(response.body);
  ASSERT_TRUE(doc.is_ok());
  const io::Json* outcomes = doc.value().find("outcomes");
  ASSERT_NE(outcomes, nullptr);
  ASSERT_EQ(outcomes->size(), 1u);
  EXPECT_EQ(outcomes->at(0).find("status")->as_string(), "ok");
  EXPECT_NE(outcomes->at(0).find("latency_ms"), nullptr);
  EXPECT_EQ(router_->active_pipelines(), 1u);
}

TEST_F(ApiTest, MalformedJsonIs400AndRunsNothing) {
  const std::vector<std::string> corpus = {
      "",
      "{",
      "not json at all",
      "[1,2,3]",
      "42",
      "{\"schema_version\":1,\"events\":{}}",
      "{\"schema_version\":1,\"events\":[{\"type\":\"add\"}]}",
      "{\"schema_version\":1,\"events\":[null]}",
      std::string(64, '['),
      "{\"schema_version\":1,\"events\":[{\"type\":\"nope\",\"id\":\"x\"}]}",
  };
  for (const std::string& body : corpus) {
    SCOPED_TRACE(body.substr(0, 40));
    EXPECT_EQ(call("POST", "/v1/events", body).status, 400);
  }
  EXPECT_EQ(router_->stats().sequence, 0u);  // nothing half-ran
}

TEST_F(ApiTest, MissingOrUnknownSchemaVersionIs400) {
  EXPECT_EQ(call("POST", "/v1/events", "{\"events\":[]}").status, 400);
  EXPECT_EQ(
      call("POST", "/v1/events", "{\"schema_version\":99,\"events\":[]}")
          .status,
      400);
}

TEST_F(ApiTest, HalfBadBatchIsRejectedAtomically) {
  // First event valid, second garbage: nothing may run.
  auto doc = io::Json::parse(add_event_body("tenant-b"));
  ASSERT_TRUE(doc.is_ok());
  io::Json events = io::Json::array();
  events.push_back(doc.value().find("events")->at(0));
  events.push_back(io::Json::string("garbage"));
  io::Json body = io::Json::object();
  body.set("schema_version", io::Json::number(io::kSchemaVersion));
  body.set("events", std::move(events));
  EXPECT_EQ(call("POST", "/v1/events", body.dump()).status, 400);
  EXPECT_EQ(router_->stats().sequence, 0u);
  EXPECT_EQ(router_->active_pipelines(), 0u);
}

TEST_F(ApiTest, EventsProcessedCountsBroadcastsOnce) {
  // One add + one resize: the resize runs on both shards (merged
  // counters see 3 events), but the client posted 2 — and
  // "events_processed", the post --resume point, must say 2.
  auto doc = io::Json::parse(add_event_body("tenant-r"));
  ASSERT_TRUE(doc.is_ok());
  io::Json events = io::Json::array();
  events.push_back(doc.value().find("events")->at(0));
  core::Platform bigger{"pool", 5};
  events.push_back(io::to_json(service::Event::resize(bigger)));
  io::Json body = io::Json::object();
  body.set("schema_version", io::Json::number(io::kSchemaVersion));
  body.set("events", std::move(events));
  ASSERT_EQ(call("POST", "/v1/events", body.dump()).status, 200);

  auto stats = io::Json::parse(call("GET", "/v1/stats").body);
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().find("events_processed")->as_number(), 2.0);
  const io::Json* merged = stats.value().find("merged");
  EXPECT_EQ(merged->find("events_ok")->as_number() +
                merged->find("events_failed")->as_number(),
            3.0);
  EXPECT_EQ(merged->find("resizes")->as_number(), 2.0);
}

TEST_F(ApiTest, AllocationAndStatsReportState) {
  ASSERT_EQ(call("POST", "/v1/events", add_event_body("tenant-c")).status,
            200);
  auto alloc = io::Json::parse(call("GET", "/v1/allocation").body);
  ASSERT_TRUE(alloc.is_ok());
  EXPECT_EQ(alloc.value().find("active_pipelines")->as_number(), 1.0);
  EXPECT_EQ(alloc.value().find("shards")->size(), 2u);

  auto stats = io::Json::parse(call("GET", "/v1/stats").body);
  ASSERT_TRUE(stats.is_ok());
  const io::Json* merged = stats.value().find("merged");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->find("events_ok")->as_number(), 1.0);
  EXPECT_EQ(stats.value().find("shards")->size(), 2u);
}

TEST(ApiOverSockets, EndToEndPostAndStats) {
  core::Platform platform{"pool", 3};
  service::RouterOptions options;
  options.shards = 2;
  auto router = service::ShardRouter::open(platform, options);
  ASSERT_TRUE(router.is_ok());
  Api api(router.value().get());
  ServerConfig config;
  HttpServer server(config, [&api](const HttpRequest& request) {
    return api.handle(request);
  });
  ASSERT_TRUE(server.start().is_ok());

  core::Application app;
  app.name = "wire-app";
  app.kernels = {test::make_kernel("k0", 8.0, 10.0, 20.0, 5.0)};
  io::Json events = io::Json::array();
  events.push_back(io::to_json(
      service::Event::add(service::PipelineSpec{"wire-1", app, 1.0})));
  io::Json body = io::Json::object();
  body.set("schema_version", io::Json::number(io::kSchemaVersion));
  body.set("events", std::move(events));

  auto posted = http_post("127.0.0.1", server.port(), "/v1/events",
                          body.dump());
  ASSERT_TRUE(posted.is_ok()) << posted.status().to_string();
  EXPECT_EQ(posted.value().status, 200);

  auto stats = http_get("127.0.0.1", server.port(), "/v1/stats");
  ASSERT_TRUE(stats.is_ok());
  auto doc = io::Json::parse(stats.value().body);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().find("merged")->find("events_ok")->as_number(), 1.0);
  server.stop();
  router.value()->stop();
}

}  // namespace
}  // namespace mfa::net
