#include <gtest/gtest.h>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "core/resources.hpp"
#include "testutil.hpp"

namespace mfa::core {
namespace {

using test::make_kernel;
using test::tiny_problem;

TEST(ResourceVec, ArithmeticAndFits) {
  ResourceVec a(10.0, 20.0, 5.0, 5.0);
  ResourceVec b(1.0, 2.0, 3.0, 4.0);
  ResourceVec sum = a + b;
  EXPECT_DOUBLE_EQ(sum[Resource::kBram], 11.0);
  EXPECT_DOUBLE_EQ(sum[Resource::kDsp], 22.0);
  EXPECT_TRUE(b.fits_within(a));
  EXPECT_FALSE(sum.fits_within(a));
  EXPECT_TRUE((a - b + b) == a);
}

TEST(ResourceVec, MaxRatioAndZeroCapacity) {
  ResourceVec demand(50.0, 25.0, 0.0, 0.0);
  ResourceVec cap = ResourceVec::uniform(100.0);
  EXPECT_DOUBLE_EQ(demand.max_ratio(cap), 0.5);
  // Demand on a zero-capacity axis is an infinite ratio.
  ResourceVec tight_cap(100.0, 0.0, 100.0, 100.0);
  EXPECT_TRUE(std::isinf(demand.max_ratio(tight_cap)));
  // Zero demand on a zero-capacity axis is fine.
  ResourceVec none(50.0, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(none.max_ratio(tight_cap), 0.5);
}

TEST(ResourceVec, MaxMultiples) {
  ResourceVec unit(10.0, 7.0, 0.0, 0.0);
  ResourceVec cap = ResourceVec::uniform(100.0);
  // BRAM allows 10, DSP allows 14 → 10.
  EXPECT_EQ(unit.max_multiples(cap, 100), 10);
  // Limit caps the answer.
  EXPECT_EQ(unit.max_multiples(cap, 3), 3);
  // Zero demand everywhere → limit.
  EXPECT_EQ(ResourceVec().max_multiples(cap, 7), 7);
  // Demand against zero capacity → 0.
  ResourceVec no_dsp(100.0, 0.0, 100.0, 100.0);
  EXPECT_EQ(unit.max_multiples(no_dsp, 100), 0);
}

TEST(ResourceVec, MaxMultiplesToleratesFloatingAccumulation) {
  // 3 × 33.33 = 99.99 within a 99.99 cap must count 3, not 2.
  ResourceVec unit(33.33, 0.0, 0.0, 0.0);
  ResourceVec cap(99.99, 100.0, 100.0, 100.0);
  EXPECT_EQ(unit.max_multiples(cap, 10), 3);
}

TEST(Application, Totals) {
  Problem p = tiny_problem();
  EXPECT_DOUBLE_EQ(p.app.total_wcet(), 24.0);
  EXPECT_DOUBLE_EQ(p.app.total_resources()[Resource::kDsp], 45.0);
  EXPECT_DOUBLE_EQ(p.app.total_bw(), 17.0);
}

TEST(Problem, EffectiveCaps) {
  Problem p = tiny_problem();
  EXPECT_DOUBLE_EQ(p.cap()[Resource::kDsp], 80.0);
  EXPECT_DOUBLE_EQ(p.bw_cap(), 100.0);
}

TEST(Problem, MaxCuPerFpga) {
  Problem p = tiny_problem();
  // Kernel a: DSP 20 within cap 80 → 4; BRAM 10 → 8; BW 5 → 20. Min: 4.
  EXPECT_EQ(p.max_cu_per_fpga(0), 4);
  EXPECT_EQ(p.max_cu_total(0), 8);
}

TEST(Problem, ValidateAcceptsGoodInstance) {
  EXPECT_TRUE(tiny_problem().validate().is_ok());
}

TEST(Problem, ValidateRejectsBadInstances) {
  Problem p = tiny_problem();
  p.app.kernels.clear();
  EXPECT_EQ(p.validate().code(), Code::kInvalid);

  p = tiny_problem();
  p.platform.num_fpgas = 0;
  EXPECT_EQ(p.validate().code(), Code::kInvalid);

  p = tiny_problem();
  p.app.kernels[0].wcet_ms = -1.0;
  EXPECT_EQ(p.validate().code(), Code::kInvalid);

  p = tiny_problem();
  p.alpha = -1.0;
  EXPECT_EQ(p.validate().code(), Code::kInvalid);

  // A kernel too large for even one CU under the constraint.
  p = tiny_problem();
  p.app.kernels[0].res[Resource::kDsp] = 90.0;  // cap is 80
  EXPECT_EQ(p.validate().code(), Code::kInfeasible);
}

TEST(Allocation, StartsEmptyAndCounts) {
  Problem p = tiny_problem();
  Allocation a(p);
  EXPECT_EQ(a.total_cu(0), 0);
  EXPECT_TRUE(std::isinf(a.et(0)));
  a.set_cu(0, 0, 2);
  a.add_cu(0, 1, 1);
  EXPECT_EQ(a.total_cu(0), 3);
  EXPECT_EQ(a.cu(0, 0), 2);
  EXPECT_EQ(a.cu(0, 1), 1);
}

TEST(Allocation, Eq1Eq2Metrics) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 2);  // ET = 8/2 = 4
  a.set_cu(1, 0, 3);  // ET = 12/3 = 4
  a.set_cu(2, 1, 1);  // ET = 4/1 = 4
  EXPECT_DOUBLE_EQ(a.et(0), 4.0);
  EXPECT_DOUBLE_EQ(a.ii(), 4.0);
}

TEST(Allocation, SpreadingFunctionEq4) {
  Problem p = tiny_problem();
  Allocation a(p);
  // All on one FPGA: φ = 3/(1+3) = 0.75.
  a.set_cu(0, 0, 3);
  EXPECT_DOUBLE_EQ(a.phi_k(0), 0.75);
  // Split 2+1: φ = 2/3 + 1/2 ≈ 1.1667 — spreading is penalized.
  a.set_cu(0, 0, 2);
  a.set_cu(0, 1, 1);
  EXPECT_NEAR(a.phi_k(0), 2.0 / 3.0 + 0.5, 1e-12);
  EXPECT_GT(a.phi_k(0), 0.75);
}

TEST(Allocation, GoalCombinesIiAndPhi) {
  Problem p = tiny_problem();  // alpha 1, beta 0.5
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 0, 1);
  EXPECT_DOUBLE_EQ(a.ii(), 12.0);
  EXPECT_DOUBLE_EQ(a.phi(), 0.5);
  EXPECT_DOUBLE_EQ(a.goal(), 12.0 + 0.5 * 0.5);
}

TEST(Allocation, PerFpgaUsageAndUtilization) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 2);  // DSP 40, BRAM 20, BW 10
  a.set_cu(2, 0, 1);  // DSP 10, BRAM 5, BW 8
  EXPECT_DOUBLE_EQ(a.fpga_resources(0)[Resource::kDsp], 50.0);
  EXPECT_DOUBLE_EQ(a.fpga_bw(0), 18.0);
  // Utilization against the full platform (100), not the 80% cap.
  EXPECT_DOUBLE_EQ(a.fpga_utilization(0), 0.5);
  EXPECT_DOUBLE_EQ(a.average_utilization(), 0.25);
}

TEST(Allocation, CheckFindsViolations) {
  Problem p = tiny_problem();
  Allocation a(p);
  // Missing CU for kernels 1 and 2 (eq. 8) + resource violation on f0.
  a.set_cu(0, 0, 5);  // 5 × DSP 20 = 100 > cap 80 (eq. 9)
  const auto violations = a.check();
  EXPECT_EQ(violations.size(), 3u);
  EXPECT_FALSE(a.feasible());
}

TEST(Allocation, CheckBandwidthViolation) {
  Problem p = tiny_problem();
  p.bw_fraction = 0.2;  // cap = 20
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 0, 2);  // BW: 5 + 4 + 16 = 25 > 20
  bool found_bw = false;
  for (const std::string& v : a.check()) {
    if (v.find("bandwidth") != std::string::npos) found_bw = true;
  }
  EXPECT_TRUE(found_bw);
}

TEST(Allocation, FeasibleWhenAllConstraintsHold) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  EXPECT_TRUE(a.feasible());
  EXPECT_EQ(a.fpgas_used_by(0), 1);
}

TEST(Allocation, ToStringMentionsEveryKernel) {
  Problem p = tiny_problem();
  Allocation a(p);
  a.set_cu(0, 0, 1);
  a.set_cu(1, 0, 1);
  a.set_cu(2, 1, 1);
  const std::string s = a.to_string();
  for (const Kernel& k : p.app.kernels) {
    EXPECT_NE(s.find(k.name), std::string::npos) << s;
  }
  EXPECT_NE(s.find("II"), std::string::npos);
}

}  // namespace
}  // namespace mfa::core
