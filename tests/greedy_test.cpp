#include <functional>
#include <random>

#include <gtest/gtest.h>

#include "alloc/greedy.hpp"
#include "core/relaxation.hpp"
#include "solver/discretize.hpp"
#include "testutil.hpp"

namespace mfa::alloc {
namespace {

using core::Platform;
using core::Problem;
using test::make_kernel;
using test::tiny_problem;

TEST(GreedyAllocator, PlacesTrivialInstance) {
  Problem p = tiny_problem();
  auto r = GreedyAllocator().allocate(p, {1, 1, 1});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().dropped_cus, 0);
  EXPECT_TRUE(r.value().allocation.feasible());
  EXPECT_DOUBLE_EQ(r.value().used_fraction, p.resource_fraction);
  EXPECT_EQ(r.value().iterations, 1);
}

TEST(GreedyAllocator, ConsolidatesOntoOneFpga) {
  // Everything fits on one FPGA; the allocator must not spread.
  Problem p = tiny_problem();
  auto r = GreedyAllocator().allocate(p, {2, 1, 1});
  ASSERT_TRUE(r.is_ok());
  const core::Allocation& a = r.value().allocation;
  int used_fpgas = 0;
  for (int f = 0; f < p.num_fpgas(); ++f) {
    bool any = false;
    for (std::size_t k = 0; k < p.num_kernels(); ++k) any |= a.cu(k, f) > 0;
    used_fpgas += any ? 1 : 0;
  }
  EXPECT_EQ(used_fpgas, 1);
}

TEST(GreedyAllocator, SplitsOversizedKernelAcrossFpgas) {
  // 4 CUs of 30% DSP cannot share one 100% FPGA → pre-pass splits 3+1.
  Problem p;
  p.app.kernels = {make_kernel("big", 10.0, 0.0, 30.0, 0.0)};
  p.platform = Platform{"2", 2};
  auto r = GreedyAllocator().allocate(p, {4});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().dropped_cus, 0);
  EXPECT_EQ(r.value().allocation.total_cu(0), 4);
  EXPECT_EQ(r.value().allocation.fpgas_used_by(0), 2);
}

TEST(GreedyAllocator, DropsSurplusWhenSaturated) {
  // Pooled-feasible but unpackable: two 60% kernels, 2 CUs each on two
  // FPGAs (pooled 240 > 200 → the discretizer would not emit this, but
  // the allocator must degrade gracefully, not fail).
  Problem p;
  p.app.kernels = {make_kernel("a", 10.0, 0.0, 60.0, 0.0),
                   make_kernel("b", 10.0, 0.0, 60.0, 0.0)};
  p.platform = Platform{"2", 2};
  auto r = GreedyAllocator().allocate(p, {2, 2});
  ASSERT_TRUE(r.is_ok());
  EXPECT_GT(r.value().dropped_cus, 0);
  // Every kernel keeps at least one CU (eq. 8).
  EXPECT_GE(r.value().allocation.total_cu(0), 1);
  EXPECT_GE(r.value().allocation.total_cu(1), 1);
  EXPECT_TRUE(r.value().allocation.feasible());
}

TEST(GreedyAllocator, InfeasibleOnlyWhenAKernelCannotPlaceOneCu) {
  Problem p;
  p.app.kernels = {make_kernel("a", 10.0, 0.0, 80.0, 0.0),
                   make_kernel("b", 10.0, 0.0, 80.0, 0.0),
                   make_kernel("c", 10.0, 0.0, 80.0, 0.0)};
  p.platform = Platform{"2", 2};  // only two FPGAs for three 80% kernels
  auto r = GreedyAllocator().allocate(p, {1, 1, 1});
  EXPECT_EQ(r.status().code(), Code::kInfeasible);
}

TEST(GreedyAllocator, TRelaxationRescuesTightConstraint) {
  // At R = 50% a 60% kernel cannot place; T = 15% lets R_c reach 65%.
  Problem p;
  p.app.kernels = {make_kernel("a", 10.0, 0.0, 60.0, 0.0)};
  p.platform = Platform{"1", 1};
  p.resource_fraction = 0.5;

  auto strict = GreedyAllocator().allocate(p, {1});
  EXPECT_EQ(strict.status().code(), Code::kInfeasible);

  GreedyOptions opts;
  opts.t_max = 0.15;
  opts.delta = 0.01;
  auto relaxed = GreedyAllocator(opts).allocate(p, {1});
  ASSERT_TRUE(relaxed.is_ok());
  EXPECT_GT(relaxed.value().used_fraction, 0.5);
  EXPECT_LE(relaxed.value().used_fraction, 0.65 + 1e-9);
  EXPECT_GT(relaxed.value().iterations, 1);
}

TEST(GreedyAllocator, DeltaControlsRelaxationGranularity) {
  Problem p;
  p.app.kernels = {make_kernel("a", 10.0, 0.0, 60.0, 0.0)};
  p.platform = Platform{"1", 1};
  p.resource_fraction = 0.5;
  GreedyOptions coarse;
  coarse.t_max = 0.30;
  coarse.delta = 0.10;
  auto r = GreedyAllocator(coarse).allocate(p, {1});
  ASSERT_TRUE(r.is_ok());
  // Steps 0.5 → 0.6: two iterations.
  EXPECT_EQ(r.value().iterations, 2);
  EXPECT_NEAR(r.value().used_fraction, 0.6, 1e-9);
}

TEST(GreedyAllocator, BandwidthIsARealConstraint) {
  // Resources free, bandwidth binds: 40% BW per CU, 3 CUs on 1 FPGA
  // cannot hold; 2 fit.
  Problem p;
  p.app.kernels = {make_kernel("a", 10.0, 1.0, 1.0, 40.0)};
  p.platform = Platform{"1", 1};
  auto r = GreedyAllocator().allocate(p, {3});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().allocation.total_cu(0), 2);
  EXPECT_EQ(r.value().dropped_cus, 1);
}

TEST(GreedyAllocator, RespectsConstraintScaling) {
  Problem p = tiny_problem();  // 80%
  auto r = GreedyAllocator().allocate(p, {3, 2, 2});
  ASSERT_TRUE(r.is_ok());
  const core::Allocation& a = r.value().allocation;
  for (int f = 0; f < p.num_fpgas(); ++f) {
    EXPECT_TRUE(a.fpga_resources(f).fits_within(p.cap(), 1e-6));
    EXPECT_LE(a.fpga_bw(f), p.bw_cap() + 1e-6);
  }
}

/// Property: on random instances with discretizer-produced totals, the
/// allocator always returns a placement that (a) respects caps at the
/// used fraction, (b) keeps one CU per kernel, (c) places no more than
/// requested, and (d) drops nothing when a per-kernel-consolidated
/// placement obviously exists (all kernels fit one FPGA together).
class RandomGreedy : public ::testing::TestWithParam<int> {};

TEST_P(RandomGreedy, InvariantsHold) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 40487u);
  Problem p = test::random_problem(rng);
  auto disc = solver::Discretizer().run(p);
  if (!disc.is_ok()) return;  // relaxation infeasible: nothing to place

  auto r = GreedyAllocator().allocate(p, disc.value().totals);
  if (!r.is_ok()) return;  // legitimate: fragmentation can block eq. 8
  const core::Allocation& a = r.value().allocation;
  const core::ResourceVec cap =
      p.platform.capacity * r.value().used_fraction;
  int placed_total = 0;
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    EXPECT_GE(a.total_cu(k), 1);
    EXPECT_LE(a.total_cu(k), disc.value().totals[k]);
    placed_total += a.total_cu(k);
  }
  int requested = 0;
  for (int n : disc.value().totals) requested += n;
  EXPECT_EQ(requested - placed_total, r.value().dropped_cus);
  for (int f = 0; f < p.num_fpgas(); ++f) {
    EXPECT_TRUE(a.fpga_resources(f).fits_within(cap, 1e-6));
    EXPECT_LE(a.fpga_bw(f), p.bw_cap() + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGreedy, ::testing::Range(1, 41));

}  // namespace
}  // namespace mfa::alloc
