#include <gtest/gtest.h>

#include "hls/cost_model.hpp"
#include "hls/layers.hpp"
#include "hls/paper.hpp"

namespace mfa::hls {
namespace {

TEST(Layers, AlexNetStructureMatchesPaperKernelList) {
  const Network net = alexnet();
  ASSERT_EQ(net.size(), 8u);  // Table 2 rows
  EXPECT_EQ(net.layers[0].name, "CONV1");
  EXPECT_EQ(net.layers[1].name, "POOL1");
  EXPECT_EQ(net.layers[2].name, "NORM1");
  EXPECT_EQ(net.layers[7].name, "CONV5");
  // Merged pools (paper footnote 1).
  EXPECT_TRUE(net.layers[3].fused_pool);
  EXPECT_TRUE(net.layers[7].fused_pool);
}

TEST(Layers, Vgg16StructureMatchesFig6Legend) {
  const Network net = vgg16();
  ASSERT_EQ(net.size(), 17u);  // 13 conv + 4 standalone pools
  int convs = 0;
  int pools = 0;
  for (const Layer& l : net.layers) {
    if (l.kind == LayerKind::kConv) ++convs;
    if (l.kind == LayerKind::kPool) ++pools;
  }
  EXPECT_EQ(convs, 13);
  EXPECT_EQ(pools, 4);
}

TEST(Layers, OpsCountsKnownValues) {
  // CONV3 of AlexNet: 13·13·384·256·3·3 MACs.
  const Network net = alexnet();
  const Layer& conv3 = net.layers[5];
  EXPECT_EQ(conv3.ops(), 13LL * 13 * 384 * 256 * 3 * 3);
  EXPECT_EQ(conv3.weight_elements(), 384LL * 256 * 3 * 3);
  EXPECT_EQ(conv3.output_elements(), 384LL * 13 * 13);
}

TEST(CostModel, MoreUnrollMeansFasterAndBigger) {
  const CostModel model(Device::vu9p());
  const Network net = alexnet();
  const Layer& conv = net.layers[0];
  const core::Kernel small =
      model.characterize(conv, DataType::kFixed16, {2, 2});
  const core::Kernel large =
      model.characterize(conv, DataType::kFixed16, {8, 8});
  EXPECT_LT(large.wcet_ms, small.wcet_ms);
  EXPECT_GT(large.res[core::Resource::kDsp],
            small.res[core::Resource::kDsp]);
}

TEST(CostModel, Fp32CostsMoreDspThanFx16) {
  const CostModel model(Device::vu9p());
  const Network net = alexnet();
  const Layer& conv = net.layers[0];
  const core::Kernel fp32 =
      model.characterize(conv, DataType::kFloat32, {4, 4});
  const core::Kernel fx16 =
      model.characterize(conv, DataType::kFixed16, {4, 4});
  EXPECT_NEAR(fp32.res[core::Resource::kDsp],
              5.0 * fx16.res[core::Resource::kDsp], 1e-9);
}

TEST(CostModel, PoolLayersUseNoDsp) {
  const CostModel model(Device::vu9p());
  const Network net = alexnet();
  const Layer& pool = net.layers[1];
  const core::Kernel k = model.characterize(pool, DataType::kFixed16, {1, 8});
  EXPECT_DOUBLE_EQ(k.res[core::Resource::kDsp], 0.0);
  EXPECT_GT(k.bw, 0.0);
}

TEST(CostModel, MemoryBoundKernelsHitTheRoofline) {
  // A pool layer with huge channel parallelism is memory bound: its
  // bandwidth share approaches one DDR channel (25 % of the device).
  const CostModel model(Device::vu9p());
  const Network net = vgg16();
  const Layer& pool = net.layers[2];  // POOL2, large maps
  const core::Kernel k =
      model.characterize(pool, DataType::kFixed16, {1, 64});
  EXPECT_NEAR(k.bw, 25.0, 1.0);
}

TEST(CostModel, PickUnrollRespectsDspBudget) {
  const CostModel model(Device::vu9p());
  const Network net = vgg16();
  const Layer& conv = net.layers[4];  // 128→128 conv
  for (double budget : {2.0, 8.0, 20.0}) {
    const UnrollConfig cfg =
        model.pick_unroll(conv, DataType::kFixed16, budget);
    const core::Kernel k = model.characterize(conv, DataType::kFixed16, cfg);
    EXPECT_LE(k.res[core::Resource::kDsp], budget + 1e-9);
  }
}

TEST(CostModel, CharacterizeNetworkProducesValidApplication) {
  const CostModel model(Device::vu9p());
  const core::Application app =
      model.characterize_network(vgg16(), DataType::kFixed16, 15.0);
  ASSERT_EQ(app.size(), 17u);
  for (const core::Kernel& k : app.kernels) {
    EXPECT_GT(k.wcet_ms, 0.0) << k.name;
    EXPECT_TRUE(k.res.non_negative()) << k.name;
    EXPECT_GE(k.bw, 0.0) << k.name;
    EXPECT_LE(k.res.max_axis(), 100.0) << k.name;
  }
  // Magnitude cross-check against Table 3: modeled per-kernel WCETs land
  // in the same order of magnitude as the measured ones (ms to tens of
  // ms per image for VGG-16 convolutions at ~15 % DSP per CU).
  const core::Application paper_app = paper::vgg16();
  double modeled_sum = 0.0;
  double paper_sum = 0.0;
  for (std::size_t i = 0; i < app.size(); ++i) {
    modeled_sum += app.kernels[i].wcet_ms;
    paper_sum += paper_app.kernels[i].wcet_ms;
  }
  EXPECT_GT(modeled_sum, paper_sum / 10.0);
  EXPECT_LT(modeled_sum, paper_sum * 10.0);
}

TEST(PaperData, Table2SumsMatchPublishedSumRow) {
  const core::Application a32 = paper::alex32();
  ASSERT_EQ(a32.size(), 8u);
  EXPECT_NEAR(a32.total_resources()[core::Resource::kBram], 54.57, 0.01);
  EXPECT_NEAR(a32.total_resources()[core::Resource::kDsp], 166.18, 0.01);
  // The published SUM row is rounded; the per-row values add to 33.03.
  EXPECT_NEAR(a32.total_bw(), 33.1, 0.15);
  EXPECT_NEAR(a32.total_wcet(), 45.32, 0.02);

  const core::Application a16 = paper::alex16();
  EXPECT_NEAR(a16.total_resources()[core::Resource::kBram], 33.15, 0.01);
  EXPECT_NEAR(a16.total_resources()[core::Resource::kDsp], 32.82, 0.01);
  EXPECT_NEAR(a16.total_bw(), 21.9, 0.15);
  EXPECT_NEAR(a16.total_wcet(), 27.55, 0.02);
}

TEST(PaperData, Table3SumsMatchPublishedSumRow) {
  const core::Application vgg = paper::vgg16();
  ASSERT_EQ(vgg.size(), 17u);
  EXPECT_NEAR(vgg.total_resources()[core::Resource::kBram], 87.37, 0.01);
  EXPECT_NEAR(vgg.total_resources()[core::Resource::kDsp], 183.67, 0.01);
  // Published SUM rows are rounded (BW row adds to 49.6).
  EXPECT_NEAR(vgg.total_bw(), 49.7, 0.15);
  // The table prints the sum only as "0.4 (s)"; the rows (with the
  // merged CONV6,7 / CONV9,10 / CONV11,12,13 entries expanded) add to
  // 426.6 ms, which rounds to 0.4 s.
  EXPECT_NEAR(vgg.total_wcet(), 400.0, 30.0);
}

TEST(PaperData, CasesCarryTable4Weights) {
  EXPECT_DOUBLE_EQ(paper::case_alex16_2fpga().beta, 0.7);
  EXPECT_DOUBLE_EQ(paper::case_alex32_4fpga().beta, 6.0);
  EXPECT_DOUBLE_EQ(paper::case_vgg_8fpga().beta, 50.0);
  EXPECT_EQ(paper::case_alex16_2fpga().num_fpgas(), 2);
  EXPECT_EQ(paper::case_alex32_4fpga().num_fpgas(), 4);
  EXPECT_EQ(paper::case_vgg_8fpga().num_fpgas(), 8);
}

TEST(PaperData, AllCasesValidateAtModerateConstraints) {
  for (core::Problem p : {paper::case_alex16_2fpga(),
                          paper::case_alex32_4fpga(),
                          paper::case_vgg_8fpga()}) {
    p.resource_fraction = 0.6;
    EXPECT_TRUE(p.validate().is_ok()) << p.app.name;
  }
}

}  // namespace
}  // namespace mfa::hls
