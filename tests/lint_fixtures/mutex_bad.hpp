// mfa_lint golden fixture: mutex-hygiene.
//
// Expected findings (exact lines asserted by lint_test.cpp):
//   line 18  unguarded sibling of a Mutex member
// The guarded member (line 20), the suppressed member (line 23), the
// CondVar / atomic / const members and the Mutex itself must NOT be
// reported.
#pragma once

class Mutex {};
class CondVar {};

class Broken {
 public:
  void poke();

 private:
  int unguarded_count_ = 0;
  Mutex mutex_;
  double guarded_value_ MFA_GUARDED_BY(mutex_) = 0.0;
  CondVar cv_;
  // mfa-lint: allow(mutex-hygiene) fixture: documented thread-confined
  int documented_handoff_ = 0;
  std::atomic<int> lock_free_ = 0;
  const int immutable_ = 7;
};
