// mfa_lint golden fixture: banned-io.
//
// Expected findings (exact lines asserted by lint_test.cpp):
//   line 8   printf outside cli/bench
//   line 9   std::cout outside cli/bench
#include <cstdio>

void log_result(int x) { printf("%d\n", x); }
void trace(int x) { std::cout << x; }
