// mfa_lint golden fixture: solver-clock (the path contains /solver/).
//
// Expected findings (exact lines asserted by lint_test.cpp):
//   line 8   clock() in a solver path
//   line 12  rand() in a solver path
//   line 17  system_clock in a solver path

double jitter_seconds() { return clock() * 1e-6; }

// A deterministic solver must draw from a seeded engine, never the
// process-global generator.
int tie_break() { return rand(); }

// Wall-clock timestamps differ across replays; steady_clock via Budget
// is the sanctioned timer.
long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
