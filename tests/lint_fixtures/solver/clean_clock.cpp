// mfa_lint clean fixture in a /solver/ path: none of these may be
// reported — they are the word-boundary and context look-alikes the
// tokenizer must distinguish from real findings.
//
//   start_time( / finish_time(  must not match `time(`
//   steady_clock                is the sanctioned timer
//   "rand()" in a string, rand() in a comment
//   randomize_order(            must not match `rand(`

struct Sim {
  double start_time_ms = 0.0;
};

double start_time(const Sim& sim) { return sim.start_time_ms; }
double finish_time(const Sim& sim) { return sim.start_time_ms + 1.0; }

long elapsed() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// Calling rand() here would be a finding; this comment is not.
const char* describe() { return "uses rand() internally? no."; }

void randomize_order(int* xs, int n) {
  // Deterministic seeded shuffle — name merely *contains* "rand".
  for (int i = n - 1; i > 0; --i) {
    const int j = (i * 2654435761u) % (i + 1);
    const int tmp = xs[i];
    xs[i] = xs[j];
    xs[j] = tmp;
  }
}
