// mfa_lint golden fixture: serialize-determinism.
//
// Expected findings (exact lines asserted by lint_test.cpp):
//   line 10  <unordered_map> included by a TU that defines to_json
//   line 15  rand() reachable from the serialization root
//   line 21  unordered_map used in serialization-reachable code
//   line 22  pointer-keyed map in serialization-reachable code
#include <map>
#include <string>
#include <unordered_map>

struct Json {};

Json to_json(int x) {
  int noise = rand() + x;
  shuffle_fields(noise);
  return Json{};
}

void shuffle_fields(int n) {
  std::unordered_map<int, int> order;
  std::map<const char*, int> by_pointer;
  order[n] = n;
  by_pointer["k"] = n;
}
