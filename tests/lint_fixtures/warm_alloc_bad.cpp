// mfa_lint golden fixture: warm-path-alloc.
//
// Expected findings (exact lines asserted by lint_test.cpp):
//   line 12  push_back in a MFA_WARM_PATH function
//   line 20  operator new reached through the call graph
//   line 21  std::string constructed on a warm path
// The suppressed resize on line 14 must NOT be reported.
#define MFA_WARM_PATH

MFA_WARM_PATH void hot_delta(std::vector<double>& xs) {
  xs[0] = 1.0;
  xs.push_back(2.0);
  // mfa-lint: allow(warm-path-alloc) grow-once fixture scratch
  xs.resize(8);
  cold_helper();
}

void cold_helper() {
  // Reached from hot_delta: both lines below are warm-path findings.
  int* leak = new int(3);
  std::string name = "boom";
  (void)leak;
  (void)name;
}
