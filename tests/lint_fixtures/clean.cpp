// mfa_lint clean fixture: a file exercising every rule's look-alikes.
// Zero findings expected.
#define MFA_WARM_PATH

// A genuinely allocation-free warm function: writes through existing
// storage only. `new` appears in this comment and in the string below;
// neither counts. push_back appears only in this comment.
MFA_WARM_PATH void patch_in_place(double* coeff, int n, double scale) {
  for (int i = 0; i < n; ++i) coeff[i] *= scale;
  warm_callee(coeff, n);
}

void warm_callee(double* coeff, int n) {
  for (int i = 0; i < n; ++i) coeff[i] += 1.0;
}

const char* banner() { return "a new beginning"; }

// Serialization over an ordered container is fine.
struct Json {};
Json to_json(const std::map<std::string, int>& fields) {
  Json out;
  for (const auto& [key, value] : fields) {
    (void)key;
    (void)value;
  }
  return out;
}

// Fully-annotated class: nothing to report.
class Mutex {};
class Clean {
 private:
  Mutex mutex_;
  int value_ MFA_GUARDED_BY(mutex_) = 0;
  std::atomic<bool> flag_{false};
};

// References and pointers to std::string are not constructions.
void borrow(const std::string& s, std::string* out) {
  if (out != nullptr && !s.empty()) *out = s;
}
