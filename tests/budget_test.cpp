#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "solver/budget.hpp"

namespace mfa::solver {
namespace {

TEST(Budget, UnlimitedByDefault) {
  Budget b;
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(b.tick());
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.nodes_used(), 10'000);
}

TEST(Budget, NodeCapStopsTicking) {
  Budget b = Budget::nodes_only(100);
  int successes = 0;
  while (b.tick()) ++successes;
  EXPECT_EQ(successes, 100);
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.remaining_nodes(), 0);
}

TEST(Budget, ConcurrentTicksCountEveryNodeExactly) {
  Budget b = Budget::nodes_only(1'000'000'000);
  constexpr int kThreads = 8;
  constexpr int kTicks = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b] {
      for (int i = 0; i < kTicks; ++i) b.tick();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(b.nodes_used(), static_cast<std::int64_t>(kThreads) * kTicks);
  EXPECT_FALSE(b.exhausted());
}

TEST(Budget, ConcurrentTicksGrantExactlyMaxNodes) {
  // Each node is granted to exactly one thread: the successful ticks
  // across all threads sum to the cap, never more.
  Budget b = Budget::nodes_only(10'000);
  constexpr int kThreads = 4;
  std::atomic<std::int64_t> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b, &successes] {
      std::int64_t mine = 0;
      while (b.tick()) ++mine;
      successes.fetch_add(mine);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(b.exhausted());
  EXPECT_LE(successes.load(), 10'000);
  // At least the cap's worth of ticks happened in total.
  EXPECT_GE(b.nodes_used(), 10'000);
}

TEST(Budget, ExpireCancelsAcrossThreads) {
  Budget b;  // unlimited — only expire() can stop it
  std::atomic<bool> started{false};
  std::thread worker([&b, &started] {
    started.store(true);
    while (b.tick()) {
    }
  });
  while (!started.load()) std::this_thread::yield();
  b.expire();
  worker.join();  // terminates ⇔ expire() reached the ticking thread
  EXPECT_TRUE(b.exhausted());
  EXPECT_FALSE(b.tick());
  EXPECT_EQ(b.remaining_nodes(), 0);
  EXPECT_EQ(b.remaining_seconds(), 0.0);
}

TEST(Budget, DeadlineExpiresDuringTicking) {
  Budget b(std::numeric_limits<std::int64_t>::max(), 0.02);
  // The deadline is polled every 1024 per-thread ticks; a few million iterations
  // vastly outlast 20 ms, so tick() must return false long before that.
  std::int64_t ticks = 0;
  while (b.tick() && ticks < 500'000'000) ++ticks;
  EXPECT_LT(ticks, 500'000'000);
  EXPECT_TRUE(b.exhausted());
}

TEST(Budget, TickPollsDeadlineDespiteBulkConsumeSkew) {
  // Regression: tick() used to poll the clock only when the *shared*
  // node count hit a multiple of 1024, so bulk consume() calls from a
  // racing lane could jump the counter past every poll point and leave
  // the ticking lane running on a stale deadline. Polling now counts
  // the budget's own tick()s (consume() never touches that counter),
  // so the deadline is re-checked within 1024 ticks no matter how the
  // shared node counter is skewed.
  Budget b(std::numeric_limits<std::int64_t>::max(), 0.02);
  std::atomic<bool> stop{false};
  // The skewing lane keeps the shared counter jumping in 1023-node
  // strides, exactly the interleaving that starved the old alignment
  // check whenever its own poll lost the race.
  std::thread skewer([&b, &stop] {
    while (!stop.load(std::memory_order_relaxed)) b.consume(1023);
  });
  std::int64_t ticks = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (b.tick() && ticks < 2'000'000'000) ++ticks;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop.store(true, std::memory_order_relaxed);
  skewer.join();
  EXPECT_TRUE(b.exhausted());
  EXPECT_LT(ticks, 2'000'000'000);
  // The ticking lane itself must stop within its polling period of the
  // 20 ms deadline, not after an unbounded overrun.
  EXPECT_LT(elapsed, 5.0);
}

TEST(Budget, TickObservesDeadlineWithinOwnPollingPeriod) {
  // Deterministic single-thread variant: skew the shared counter off
  // the old 1024-alignment, let the deadline pass, then tick. Expiry
  // must arrive within ~1024 of this thread's own ticks.
  Budget b(std::numeric_limits<std::int64_t>::max(), 0.005);
  b.consume(700);  // deadline still ahead: consume's own poll passes
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::int64_t ticks = 0;
  while (b.tick() && ticks < 1'000'000) ++ticks;
  EXPECT_TRUE(b.exhausted());
  EXPECT_LE(ticks, 2048);
}

TEST(Budget, InterleavedBudgetsEachObserveTheirDeadline) {
  // The poll counter is per *budget*, not per thread: one thread
  // alternating tick() across two deadline budgets must still poll
  // each within 1024 of that budget's own ticks (a thread-local
  // counter would land every poll on the same budget of the pair).
  Budget a(std::numeric_limits<std::int64_t>::max(), 0.005);
  Budget b(std::numeric_limits<std::int64_t>::max(), 0.005);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::int64_t ticks = 0;
  bool a_alive = true;
  bool b_alive = true;
  while ((a_alive || b_alive) && ticks < 1'000'000) {
    if (a_alive) a_alive = a.tick();
    if (b_alive) b_alive = b.tick();
    ++ticks;
  }
  EXPECT_TRUE(a.exhausted());
  EXPECT_TRUE(b.exhausted());
  EXPECT_LE(ticks, 2048);
}

TEST(Budget, ConsumeAccountsBulkNodes) {
  Budget b = Budget::nodes_only(1'000);
  b.consume(400);
  EXPECT_EQ(b.nodes_used(), 400);
  EXPECT_EQ(b.remaining_nodes(), 600);
  EXPECT_FALSE(b.exhausted());
  b.consume(700);
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.remaining_nodes(), 0);
}

TEST(Budget, CopySnapshotsCounters) {
  Budget b = Budget::nodes_only(1'000);
  for (int i = 0; i < 10; ++i) b.tick();
  Budget copy = b;
  EXPECT_EQ(copy.nodes_used(), 10);
  // Independent after the copy.
  copy.tick();
  EXPECT_EQ(copy.nodes_used(), 11);
  EXPECT_EQ(b.nodes_used(), 10);
}

TEST(Budget, RemainingSecondsInfiniteWithoutDeadline) {
  Budget b;
  EXPECT_TRUE(std::isinf(b.remaining_seconds()));
  Budget capped(1'000, 3600.0);
  EXPECT_GT(capped.remaining_seconds(), 0.0);
  EXPECT_LE(capped.remaining_seconds(), 3600.0);
}

}  // namespace
}  // namespace mfa::solver
