#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/fingerprint.hpp"
#include "core/relax_cache.hpp"
#include "core/relaxation.hpp"
#include "solver/discretize.hpp"
#include "testutil.hpp"

namespace mfa::core {
namespace {

using test::tiny_problem;

TEST(Fingerprint, SensitiveToRelaxationInputsOnly) {
  const Problem base = tiny_problem();
  const Fingerprint fp = relaxation_fingerprint(base);

  // Anything the relaxation depends on changes the fingerprint…
  Problem changed = base;
  changed.app.kernels[0].wcet_ms += 1e-9;
  EXPECT_NE(relaxation_fingerprint(changed), fp);
  changed = base;
  changed.resource_fraction = 0.79;
  EXPECT_NE(relaxation_fingerprint(changed), fp);
  changed = base;
  changed.platform.num_fpgas = 3;
  EXPECT_NE(relaxation_fingerprint(changed), fp);

  // …while names and objective weights do not (so β = 0 twins share
  // relaxation entries).
  changed = base;
  changed.app.name = "renamed";
  changed.app.kernels[1].name = "other";
  changed.beta = 0.0;
  changed.alpha = 17.0;
  EXPECT_EQ(relaxation_fingerprint(changed), fp);
}

TEST(Fingerprint, BoundsAndHintsKeySeparateEntries) {
  const Problem p = tiny_problem();
  const CuBounds defaults = CuBounds::defaults(p);
  CuBounds tightened = defaults;
  tightened.upper[0] -= 1.0;
  EXPECT_NE(relaxation_cache_key(p, defaults, 0.0),
            relaxation_cache_key(p, tightened, 0.0));
  EXPECT_NE(relaxation_cache_key(p, defaults, 0.0),
            relaxation_cache_key(p, defaults, 2.5));
  // Bisection and interior-point entries never alias.
  EXPECT_NE(relaxation_cache_key(p, defaults, 0.0),
            relaxation_gp_cache_key(p, gp::SolverOptions{}));
}

TEST(RelaxationCache, HitMissAndFirstWriterWins) {
  RelaxationCache cache;
  const Problem p = tiny_problem();
  const Fingerprint key = relaxation_cache_key(p, CuBounds::defaults(p), 0.0);

  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  auto solved = solve_relaxation(p);
  ASSERT_TRUE(solved.is_ok());
  auto stored = cache.insert(key, solved);
  ASSERT_NE(stored, nullptr);

  auto hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), stored.get());  // same entry, shared ownership
  EXPECT_EQ(hit->value().ii, solved.value().ii);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);

  // A second insert under the same key keeps the first entry.
  auto second = cache.insert(key, solved);
  EXPECT_EQ(second.get(), stored.get());
  EXPECT_EQ(cache.size(), 1u);

  // Infeasible outcomes are cacheable too.
  CuBounds empty = CuBounds::defaults(p);
  empty.lower[0] = 5.0;
  empty.upper[0] = 4.0;
  const Fingerprint bad_key = relaxation_cache_key(p, empty, 0.0);
  auto entry = cache.get_or_solve(
      bad_key, [&] { return solve_relaxation(p, empty); });
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->is_ok());
  EXPECT_EQ(entry->status().code(), Code::kInfeasible);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // Entries handed out before clear() stay alive (shared ownership).
  EXPECT_TRUE(hit->is_ok());
}

TEST(RelaxationCache, ConcurrentGetOrSolveIsConsistent) {
  // Many threads hammer the same small key set; every returned entry for
  // a key must be valid and identical in value, whatever thread won.
  RelaxationCache cache;
  const Problem p = tiny_problem();
  std::vector<Fingerprint> keys;
  std::vector<CuBounds> bounds;
  for (int i = 0; i < 8; ++i) {
    CuBounds b = CuBounds::defaults(p);
    b.lower[i % p.num_kernels()] += 0.25 * (i + 1);  // 8 distinct keys
    bounds.push_back(b);
    keys.push_back(relaxation_cache_key(p, b, 0.0));
  }
  const auto reference = [&](int i) { return solve_relaxation(p, bounds[i]); };

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        const int i = (t + round) % 8;
        auto entry = cache.get_or_solve(
            keys[i], [&] { return solve_relaxation(p, bounds[i]); });
        auto expect = reference(i);
        if (entry->is_ok() != expect.is_ok()) {
          ++mismatches;
        } else if (entry->is_ok() &&
                   entry->value().ii != expect.value().ii) {
          ++mismatches;  // bit-identical, not merely close
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), 8u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(RelaxationCache, ShardedCacheBehavesLikeSingleShard) {
  // Sharding is a pure concurrency optimization: the same key set lands
  // in the same cache with identical hit/miss behavior, just spread
  // over independently locked shards.
  RelaxCacheConfig config;
  config.shards = 7;  // rounded up to 8
  RelaxationCache cache(config);
  EXPECT_EQ(cache.num_shards(), 8u);
  EXPECT_EQ(cache.capacity(), 0u);  // unbounded

  const Problem p = tiny_problem();
  std::vector<Fingerprint> keys;
  for (int i = 0; i < 64; ++i) {
    CuBounds b = CuBounds::defaults(p);
    b.lower[i % p.num_kernels()] += 0.1 * (i + 1);
    keys.push_back(relaxation_cache_key(p, b, 0.0));
    cache.insert(keys.back(), solve_relaxation(p, b));
  }
  EXPECT_EQ(cache.size(), 64u);
  for (const Fingerprint& key : keys) {
    EXPECT_NE(cache.lookup(key), nullptr);
  }
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RelaxationCache, EvictionBoundsResidencyAndStaysTransparent) {
  RelaxCacheConfig config;
  config.shards = 4;
  config.max_entries = 16;  // 4 per shard
  RelaxationCache cache(config);
  EXPECT_EQ(cache.capacity(), 16u);

  const Problem p = tiny_problem();
  std::vector<CuBounds> bounds;
  std::vector<Fingerprint> keys;
  for (int i = 0; i < 200; ++i) {
    CuBounds b = CuBounds::defaults(p);
    b.lower[i % p.num_kernels()] += 0.05 * (i + 1);
    bounds.push_back(b);
    keys.push_back(relaxation_cache_key(p, b, 0.0));
    cache.get_or_solve(keys.back(),
                       [&] { return solve_relaxation(p, b); });
  }
  // Residency never exceeds the bound, and evictions happened.
  EXPECT_LE(cache.size(), 16u);
  const auto stats = cache.stats();
  EXPECT_GE(stats.evictions, 200u - 16u);
  EXPECT_LE(stats.entries, 16u);

  // Transparency: an evicted key re-solves to bit-identical bytes.
  for (int i = 0; i < 200; ++i) {
    auto entry = cache.get_or_solve(
        keys[static_cast<std::size_t>(i)],
        [&] { return solve_relaxation(p, bounds[static_cast<std::size_t>(i)]); });
    const auto fresh = solve_relaxation(p, bounds[static_cast<std::size_t>(i)]);
    ASSERT_EQ(entry->is_ok(), fresh.is_ok());
    if (fresh.is_ok()) {
      EXPECT_EQ(entry->value().ii, fresh.value().ii);
      EXPECT_EQ(entry->value().n_hat, fresh.value().n_hat);
    }
  }
}

TEST(RelaxationCache, EvictedEntriesStayAliveForHolders) {
  RelaxCacheConfig config;
  config.shards = 1;
  config.max_entries = 1;
  RelaxationCache cache(config);
  const Problem p = tiny_problem();
  CuBounds b0 = CuBounds::defaults(p);
  auto held = cache.insert(relaxation_cache_key(p, b0, 0.0),
                           solve_relaxation(p, b0));
  CuBounds b1 = CuBounds::defaults(p);
  b1.lower[0] += 1.0;
  cache.insert(relaxation_cache_key(p, b1, 0.0), solve_relaxation(p, b1));
  EXPECT_EQ(cache.size(), 1u);  // b0's entry was evicted…
  ASSERT_NE(held, nullptr);     // …but the held pointer still works
  EXPECT_TRUE(held->is_ok());
  EXPECT_GT(held->value().ii, 0.0);
}

TEST(CompiledModelCache, GpSolveIsByteTransparentAcrossCoefficients) {
  // The model cache must be invisible in the solved bytes: a hit is
  // re-patched from the caller's problem, so whatever structurally
  // identical problem populated the entry, the cached-path result
  // equals the fresh-compile result exactly.
  const Problem base = tiny_problem();
  Problem reweighted = base;
  for (Kernel& k : reweighted.app.kernels) k.wcet_ms *= 1.7;

  CompiledModelCache models;
  // Populate the structure entry with `reweighted`'s coefficients…
  const auto seed = solve_relaxation_gp(reweighted, gp::SolverOptions{},
                                        &models);
  ASSERT_TRUE(seed.is_ok());
  EXPECT_EQ(models.stats().misses, 1u);
  EXPECT_EQ(models.size(), 1u);

  // …then solve `base` through the cache (hit + patch) and fresh.
  const std::int64_t patches0 = gp::total_coefficient_patches();
  const std::int64_t compiles0 = gp::total_structure_compiles();
  const auto cached = solve_relaxation_gp(base, gp::SolverOptions{},
                                          &models);
  EXPECT_EQ(gp::total_coefficient_patches() - patches0, 1);
  EXPECT_EQ(gp::total_structure_compiles() - compiles0, 0);
  EXPECT_EQ(models.stats().hits, 1u);
  const auto fresh = solve_relaxation_gp(base);
  ASSERT_TRUE(cached.is_ok());
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(cached.value().ii, fresh.value().ii);  // bit-identical
  EXPECT_EQ(cached.value().n_hat, fresh.value().n_hat);

  // Warm-started solves go through the same artifact.
  const auto cached_warm = solve_relaxation_gp(base, gp::SolverOptions{},
                                               fresh.value(), &models);
  const auto fresh_warm =
      solve_relaxation_gp(base, gp::SolverOptions{}, fresh.value());
  ASSERT_TRUE(cached_warm.is_ok());
  ASSERT_TRUE(fresh_warm.is_ok());
  EXPECT_EQ(cached_warm.value().ii, fresh_warm.value().ii);
  EXPECT_EQ(cached_warm.value().n_hat, fresh_warm.value().n_hat);
}

TEST(CompiledModelCache, StructuralChangeMissesReweightingHits) {
  const Problem base = tiny_problem();
  CompiledModelCache models;
  ASSERT_TRUE(solve_relaxation_gp(base, gp::SolverOptions{}, &models)
                  .is_ok());
  const auto stats0 = models.stats();
  EXPECT_EQ(stats0.misses, 1u);

  // Pure re-weighting (WCET change): same structure → hit.
  Problem reweighted = base;
  reweighted.app.kernels[0].wcet_ms *= 3.0;
  ASSERT_TRUE(
      solve_relaxation_gp(reweighted, gp::SolverOptions{}, &models).is_ok());
  EXPECT_EQ(models.stats().hits, stats0.hits + 1);
  EXPECT_EQ(models.size(), 1u);

  // One more kernel: new structure → miss, second entry.
  Problem grown = base;
  grown.app.kernels.push_back(grown.app.kernels[0]);
  grown.app.kernels.back().name = "clone";
  ASSERT_TRUE(
      solve_relaxation_gp(grown, gp::SolverOptions{}, &models).is_ok());
  EXPECT_EQ(models.stats().misses, stats0.misses + 1);
  EXPECT_EQ(models.size(), 2u);
}

TEST(CompiledModelCache, ConcurrentCloneAndPatchIsConsistent) {
  // Threads race solve_relaxation_gp over a shared cache on two
  // structures × several coefficient variants: concurrent misses
  // (compile + insert), hits (clone + patch of one shared structure)
  // and lazy slack lowerings must all produce exactly the uncached
  // bytes. Runs under TSan in CI.
  CompiledModelCache models;
  const Problem base = tiny_problem();
  Problem grown = base;
  grown.app.kernels.push_back(grown.app.kernels[0]);
  grown.app.kernels.back().name = "clone";

  std::vector<Problem> variants;
  for (int i = 0; i < 6; ++i) {
    Problem p = (i % 2 == 0) ? base : grown;
    for (Kernel& k : p.app.kernels) {
      k.wcet_ms *= 1.0 + 0.25 * static_cast<double>(i);
    }
    variants.push_back(std::move(p));
  }
  std::vector<StatusOr<RelaxedSolution>> reference;
  reference.reserve(variants.size());
  for (const Problem& p : variants) {
    reference.push_back(solve_relaxation_gp(p));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 12; ++round) {
        const std::size_t i =
            static_cast<std::size_t>(t + round) % variants.size();
        const auto got = solve_relaxation_gp(variants[i], gp::SolverOptions{},
                                             &models);
        if (got.is_ok() != reference[i].is_ok()) {
          ++mismatches;
        } else if (got.is_ok() &&
                   (got.value().ii != reference[i].value().ii ||
                    got.value().n_hat != reference[i].value().n_hat)) {
          ++mismatches;  // bit-identical, not merely close
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(models.size(), 2u);  // one entry per structure
}

TEST(CompiledModelCache, EvictionIsTransparent) {
  // A capacity-1 cache thrashes between two structures; every solve
  // still returns exactly the uncached bytes.
  CacheConfig config;
  config.shards = 1;
  config.max_entries = 1;
  CompiledModelCache models(config);

  const Problem a = tiny_problem();
  Problem grown = a;
  grown.app.kernels.push_back(grown.app.kernels[0]);
  grown.app.kernels.back().name = "clone";
  const Problem& b = grown;
  for (int round = 0; round < 3; ++round) {
    for (const Problem* p : {&a, &b}) {
      const auto cached = solve_relaxation_gp(*p, gp::SolverOptions{},
                                              &models);
      const auto fresh = solve_relaxation_gp(*p);
      ASSERT_EQ(cached.is_ok(), fresh.is_ok());
      if (fresh.is_ok()) {
        EXPECT_EQ(cached.value().ii, fresh.value().ii);
        EXPECT_EQ(cached.value().n_hat, fresh.value().n_hat);
      }
    }
  }
  EXPECT_LE(models.size(), 1u);
  EXPECT_GT(models.stats().evictions, 0u);
}

TEST(RelaxationWarmStart, BisectionHintPreservesOptimum) {
  // Any positive hint — inside or outside the bracket, feasible or not —
  // must leave the bisection optimum unchanged to tolerance.
  const Problem p = tiny_problem();
  const CuBounds b = CuBounds::defaults(p);
  const auto cold = solve_relaxation(p, b);
  ASSERT_TRUE(cold.is_ok());
  for (double hint : {1e-6, 0.5, 0.9, 1.0, 1.1, 2.0, 1e6}) {
    const auto warm = solve_relaxation(p, b, hint * cold.value().ii);
    ASSERT_TRUE(warm.is_ok()) << "hint factor " << hint;
    EXPECT_NEAR(warm.value().ii, cold.value().ii,
                1e-9 * cold.value().ii)
        << "hint factor " << hint;
  }
}

TEST(RelaxationWarmStart, GpWarmStartMatchesCold) {
  const Problem p = tiny_problem();
  const auto cold = solve_relaxation_gp(p);
  ASSERT_TRUE(cold.is_ok());
  const auto warm = solve_relaxation_gp(p, gp::SolverOptions{}, cold.value());
  ASSERT_TRUE(warm.is_ok());
  EXPECT_NEAR(warm.value().ii, cold.value().ii, 1e-4 * cold.value().ii);
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    EXPECT_NEAR(warm.value().n_hat[k], cold.value().n_hat[k],
                1e-3 * cold.value().n_hat[k] + 1e-6);
  }
}

TEST(Discretizer, CachedAndWarmStartedSearchMatchesColdSearch) {
  // The cache + parent-hint warm starts are pure accelerations: totals
  // and II must match a cold discretization exactly.
  const Problem p = tiny_problem();
  solver::DiscretizeOptions cold_opts;
  cold_opts.warm_start_nodes = false;
  const auto cold = solver::Discretizer(cold_opts).run(p);
  ASSERT_TRUE(cold.is_ok());

  RelaxationCache cache;
  solver::DiscretizeOptions warm_opts;
  warm_opts.warm_start_nodes = true;
  warm_opts.cache = &cache;
  const auto warm = solver::Discretizer(warm_opts).run(p);
  ASSERT_TRUE(warm.is_ok());
  EXPECT_EQ(warm.value().totals, cold.value().totals);
  EXPECT_DOUBLE_EQ(warm.value().ii, cold.value().ii);
  EXPECT_GT(cache.size(), 0u);

  // Re-running with a populated cache reproduces the result from hits.
  const auto replay = solver::Discretizer(warm_opts).run(p);
  ASSERT_TRUE(replay.is_ok());
  EXPECT_EQ(replay.value().totals, warm.value().totals);
  EXPECT_EQ(cache.stats().hits, cache.stats().misses);
}

}  // namespace
}  // namespace mfa::core
