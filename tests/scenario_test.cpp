// Heterogeneous-platform and scenario-generator coverage: JSON
// round-trips of mixed-class platforms, homogeneous parity with the
// seed behavior, generator determinism, cache-key sensitivity to the
// class vector, and the ISSUE-3 acceptance scenario (a fixed-seed
// mixed 2-class instance solved by GP+A, exact and naive).
#include <gtest/gtest.h>

#include "alloc/gpa.hpp"
#include "core/fingerprint.hpp"
#include "core/problem.hpp"
#include "core/relaxation.hpp"
#include "hls/paper.hpp"
#include "io/serialize.hpp"
#include "scenario/generate.hpp"
#include "solver/exact.hpp"
#include "solver/naive.hpp"
#include "testutil.hpp"

namespace mfa {
namespace {

using core::DeviceClass;
using core::Platform;
using core::Problem;
using core::Resource;
using core::ResourceVec;

/// A hand-built 2-class, 3-FPGA problem: one full device, two half
/// devices with reduced DRAM.
Problem mixed_problem() {
  Problem p;
  p.app.name = "mixed";
  p.app.kernels = {
      test::make_kernel("a", 8.0, 10.0, 20.0, 5.0),
      test::make_kernel("b", 12.0, 8.0, 15.0, 4.0),
      test::make_kernel("c", 4.0, 35.0, 10.0, 8.0),
  };
  DeviceClass big{"big", ResourceVec::uniform(100.0), 100.0};
  DeviceClass small{"small", ResourceVec::uniform(50.0), 60.0};
  p.platform = Platform::heterogeneous("mix", {big, small}, {0, 1, 1});
  p.resource_fraction = 0.8;
  p.alpha = 1.0;
  p.beta = 0.5;
  return p;
}

TEST(Platform, PerFpgaAccessors) {
  const Problem p = mixed_problem();
  EXPECT_FALSE(p.platform.homogeneous());
  EXPECT_EQ(p.platform.num_classes(), 2u);
  EXPECT_EQ(p.platform.class_index(0), 0);
  EXPECT_EQ(p.platform.class_index(2), 1);
  EXPECT_DOUBLE_EQ(p.platform.fpga_capacity(0)[Resource::kDsp], 100.0);
  EXPECT_DOUBLE_EQ(p.platform.fpga_capacity(1)[Resource::kDsp], 50.0);
  EXPECT_DOUBLE_EQ(p.platform.fpga_bw_capacity(2), 60.0);
  EXPECT_DOUBLE_EQ(p.cap(1)[Resource::kDsp], 40.0);  // 50 · 0.8
  EXPECT_DOUBLE_EQ(p.bw_cap(0), 100.0);
  // Pooled caps sum the per-FPGA effective caps.
  EXPECT_DOUBLE_EQ(p.pooled_cap()[Resource::kDsp], 80.0 + 40.0 + 40.0);
  EXPECT_DOUBLE_EQ(p.pooled_bw_cap(), 100.0 + 60.0 + 60.0);
}

TEST(Platform, PerFpgaCuCaps) {
  const Problem p = mixed_problem();
  // Kernel c (DSP 35): big FPGA fits ⌊80/35⌋ = 2, small ⌊40/35⌋ = 1.
  EXPECT_EQ(p.max_cu_per_fpga(2, 0), 2);
  EXPECT_EQ(p.max_cu_per_fpga(2, 1), 1);
  EXPECT_EQ(p.max_cu_per_fpga(2), 2);       // roomiest device
  EXPECT_EQ(p.max_cu_total(2), 2 + 1 + 1);  // per-FPGA sum
}

TEST(Platform, ValidateRejectsBadClassAssignments) {
  Problem p = mixed_problem();
  p.platform.class_of = {0, 1};  // one FPGA unassigned
  EXPECT_EQ(p.validate().code(), Code::kInvalid);

  p = mixed_problem();
  p.platform.class_of = {0, 1, 2};  // index out of range
  EXPECT_EQ(p.validate().code(), Code::kInvalid);

  p = mixed_problem();
  p.platform.classes.clear();  // assignment without classes
  EXPECT_EQ(p.validate().code(), Code::kInvalid);

  // A kernel too large for every class.
  p = mixed_problem();
  p.app.kernels[2].res[Resource::kDsp] = 90.0;  // big cap is 80
  EXPECT_EQ(p.validate().code(), Code::kInfeasible);
}

TEST(Serialize, MixedPlatformRoundTrip) {
  const Problem p = mixed_problem();
  const std::string text = io::to_json(p).dump(2);
  auto parsed = io::problem_from_text(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Problem& q = parsed.value();
  ASSERT_FALSE(q.platform.homogeneous());
  ASSERT_EQ(q.platform.classes.size(), 2u);
  EXPECT_EQ(q.platform.classes[0].name, "big");
  EXPECT_EQ(q.platform.classes[1].name, "small");
  EXPECT_EQ(q.platform.class_of, p.platform.class_of);
  for (int f = 0; f < p.num_fpgas(); ++f) {
    EXPECT_EQ(q.platform.fpga_capacity(f), p.platform.fpga_capacity(f));
    EXPECT_DOUBLE_EQ(q.platform.fpga_bw_capacity(f),
                     p.platform.fpga_bw_capacity(f));
  }
  // Second trip is bit-identical text.
  EXPECT_EQ(io::to_json(q).dump(2), text);
}

TEST(Serialize, RejectsInconsistentClassFields) {
  const char* missing_assignment = R"({
    "application": {"kernels": [{"name": "k", "wcet_ms": 1.0, "dsp": 10}]},
    "platform": {"fpgas": 2, "classes": [{"name": "c"}]}})";
  EXPECT_FALSE(io::problem_from_text(missing_assignment).is_ok());

  const char* bad_index = R"({
    "application": {"kernels": [{"name": "k", "wcet_ms": 1.0, "dsp": 10}]},
    "platform": {"fpgas": 2, "classes": [{"name": "c"}],
                 "class_of": [0, 5]}})";
  EXPECT_FALSE(io::problem_from_text(bad_index).is_ok());

  // Fractional indices must be rejected, not silently truncated.
  const char* fractional = R"({
    "application": {"kernels": [{"name": "k", "wcet_ms": 1.0, "dsp": 10}]},
    "platform": {"fpgas": 2, "classes": [{"name": "c"}],
                 "class_of": [0, 0.5]}})";
  EXPECT_FALSE(io::problem_from_text(fractional).is_ok());
}

/// A single-class heterogeneous encoding must solve exactly like the
/// same platform in the homogeneous (seed) encoding — allocations are
/// compared cell by cell, not just by objective.
TEST(Heterogeneous, SingleClassMatchesHomogeneousBitForBit) {
  Problem homog = test::tiny_problem();
  Problem hetero = homog;
  DeviceClass only{"only", homog.platform.capacity, homog.platform.bw_capacity};
  hetero.platform = Platform::heterogeneous(
      homog.platform.name, {only},
      std::vector<int>(static_cast<std::size_t>(homog.num_fpgas()), 0));

  auto g1 = alloc::GpaSolver().solve(homog);
  auto g2 = alloc::GpaSolver().solve(hetero);
  ASSERT_TRUE(g1.is_ok() && g2.is_ok());
  for (std::size_t k = 0; k < homog.num_kernels(); ++k) {
    for (int f = 0; f < homog.num_fpgas(); ++f) {
      EXPECT_EQ(g1.value().allocation.cu(k, f), g2.value().allocation.cu(k, f));
    }
  }
  EXPECT_DOUBLE_EQ(g1.value().relaxed_ii, g2.value().relaxed_ii);

  auto e1 = solver::ExactSolver().solve(homog);
  auto e2 = solver::ExactSolver().solve(hetero);
  ASSERT_TRUE(e1.is_ok() && e2.is_ok());
  for (std::size_t k = 0; k < homog.num_kernels(); ++k) {
    for (int f = 0; f < homog.num_fpgas(); ++f) {
      EXPECT_EQ(e1.value().allocation.cu(k, f), e2.value().allocation.cu(k, f));
    }
  }
}

/// The ISSUE-3 acceptance scenario: a generated mixed-class 2-FPGA
/// instance (fixed seed) solves via GP+A, exact and naive; exact and
/// naive agree on the optimum and the GP+A allocation is feasible.
TEST(Heterogeneous, AcceptanceScenarioSolvesOnAllPaths) {
  scenario::ScenarioSpec spec;
  spec.min_kernels = 3;
  spec.max_kernels = 3;
  spec.min_fpgas = 2;
  spec.max_fpgas = 2;
  spec.max_classes = 2;
  spec.class_skew = 0.5;
  spec.tightness = 0.9;
  spec.max_cu_per_kernel = 3;
  spec.beta_probability = 1.0;

  // Seed 0 draws a genuinely mixed platform under this spec (asserted
  // below, so a generator change cannot silently hollow out the test).
  const Problem p = scenario::generate(spec, 0);
  ASSERT_FALSE(p.platform.homogeneous());
  ASSERT_EQ(p.platform.num_classes(), 2u);

  auto exact = solver::ExactSolver().solve(p);
  ASSERT_TRUE(exact.is_ok()) << exact.status().to_string();
  ASSERT_TRUE(exact.value().proved_optimal);
  EXPECT_TRUE(exact.value().allocation.feasible());

  solver::NaiveMinlp naive;
  auto oracle = naive.solve(p);
  ASSERT_TRUE(oracle.is_ok()) << oracle.status().to_string();
  ASSERT_TRUE(oracle.value().proved_optimal);
  EXPECT_NEAR(exact.value().goal, oracle.value().goal,
              1e-6 * (1.0 + oracle.value().goal));

  auto gpa = alloc::GpaSolver().solve(p);
  ASSERT_TRUE(gpa.is_ok()) << gpa.status().to_string();
  EXPECT_TRUE(gpa.value().allocation.feasible());
  // Heuristic never beats the proved optimum goal.
  EXPECT_GE(gpa.value().allocation.goal(), exact.value().goal * (1.0 - 1e-9));
}

/// Exact placement must exploit class asymmetry: a kernel that only
/// fits the big device must land there.
TEST(Heterogeneous, ExactUsesTheRightDevice) {
  Problem p;
  p.app.kernels = {test::make_kernel("big-only", 10.0, 0.0, 60.0, 0.0),
                   test::make_kernel("anywhere", 10.0, 0.0, 20.0, 0.0)};
  DeviceClass big{"big", ResourceVec::uniform(100.0), 100.0};
  DeviceClass small{"small", ResourceVec::uniform(40.0), 100.0};
  p.platform = Platform::heterogeneous("mix", {big, small}, {1, 0});
  auto r = solver::ExactSolver().solve(p);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  // "big-only" (DSP 60) exceeds the small class cap (40): every CU of
  // it must sit on FPGA 1 (the big device).
  EXPECT_EQ(r.value().allocation.cu(0, 0), 0);
  EXPECT_GE(r.value().allocation.cu(0, 1), 1);
  EXPECT_TRUE(r.value().allocation.feasible());
}

TEST(Scenario, SameSeedSameScenario) {
  const scenario::ScenarioSpec spec;
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 1234567ull}) {
    const Problem a = scenario::generate(spec, seed);
    const Problem b = scenario::generate(spec, seed);
    // Bit-for-bit identical serialization, not just structural equality.
    EXPECT_EQ(io::to_json(a).dump(), io::to_json(b).dump()) << seed;
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  const scenario::ScenarioSpec spec;
  const Problem a = scenario::generate(spec, 1);
  const Problem b = scenario::generate(spec, 2);
  EXPECT_NE(io::to_json(a).dump(), io::to_json(b).dump());
}

TEST(Scenario, EveryInstanceValidates) {
  scenario::ScenarioSpec spec;
  spec.max_classes = 3;
  spec.min_fpgas = 1;
  spec.max_fpgas = 4;
  spec.tightness = 0.6;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Problem p = scenario::generate(spec, seed);
    EXPECT_TRUE(p.validate().is_ok()) << "seed " << seed;
  }
}

TEST(Scenario, SpecKnobsAreRespected) {
  scenario::ScenarioSpec spec;
  spec.min_kernels = spec.max_kernels = 5;
  spec.min_fpgas = spec.max_fpgas = 4;
  spec.max_classes = 1;  // force homogeneous
  spec.tightness = 0.7;
  bool saw_beta = false;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Problem p = scenario::generate(spec, seed);
    EXPECT_EQ(p.num_kernels(), 5u);
    EXPECT_EQ(p.num_fpgas(), 4);
    EXPECT_TRUE(p.platform.homogeneous());
    EXPECT_DOUBLE_EQ(p.resource_fraction, 0.7);
    saw_beta = saw_beta || p.beta > 0.0;
  }
  EXPECT_TRUE(saw_beta);  // beta_probability = 0.5 over 20 draws
}

/// The relaxation cache key must distinguish problems that differ only
/// in their device-class vector — same pooled capacity or not.
TEST(Fingerprint, SensitiveToClassVector) {
  const Problem base = mixed_problem();
  const core::Fingerprint fp = core::relaxation_fingerprint(base);

  // Identical problem, identical key.
  EXPECT_EQ(fp, core::relaxation_fingerprint(mixed_problem()));

  // Swap which FPGAs carry which class: pooled caps unchanged, but the
  // per-FPGA cap sequence (and hence CU bounds) changes.
  Problem swapped = base;
  swapped.platform.class_of = {1, 1, 0};
  EXPECT_NE(fp, core::relaxation_fingerprint(swapped));

  // Change one class's capacity.
  Problem resized = base;
  resized.platform.classes[1].capacity = ResourceVec::uniform(60.0);
  EXPECT_NE(fp, core::relaxation_fingerprint(resized));

  // Change one class's bandwidth.
  Problem rebw = base;
  rebw.platform.classes[1].bw_capacity = 50.0;
  EXPECT_NE(fp, core::relaxation_fingerprint(rebw));

  // A homogeneous platform with the same pooled capacity as the mix
  // must not alias it either.
  Problem pooled_twin = base;
  pooled_twin.platform = core::Platform{};
  pooled_twin.platform.name = "twin";
  pooled_twin.platform.num_fpgas = 3;
  // Pooled DSP of the mix is 200 (100 + 50 + 50) over 3 FPGAs.
  pooled_twin.platform.capacity = ResourceVec::uniform(200.0 / 3.0);
  pooled_twin.platform.bw_capacity = (100.0 + 60.0 + 60.0) / 3.0;
  EXPECT_NE(fp, core::relaxation_fingerprint(pooled_twin));
}

/// The warm-start cache stays sound across class vectors: GP+A with a
/// shared cache solves a mixed problem and its class-swapped twin to
/// the same answers as without a cache.
TEST(Fingerprint, CacheTransparentAcrossClassVectors) {
  Problem a = mixed_problem();
  Problem b = a;
  b.platform.class_of = {1, 1, 0};

  core::RelaxationCache cache;
  alloc::GpaOptions with_cache;
  with_cache.relax_cache = &cache;
  for (const Problem* p : {&a, &b, &a}) {
    auto cached = alloc::GpaSolver(with_cache).solve(*p);
    auto cold = alloc::GpaSolver().solve(*p);
    ASSERT_EQ(cached.is_ok(), cold.is_ok());
    if (!cached.is_ok()) continue;
    EXPECT_DOUBLE_EQ(cached.value().relaxed_ii, cold.value().relaxed_ii);
    EXPECT_EQ(cached.value().totals, cold.value().totals);
  }
  EXPECT_GT(cache.stats().hits, 0u);  // third pass re-used the first's
}

TEST(Heterogeneous, GreedyRespectsPerDeviceCaps) {
  const Problem p = mixed_problem();
  auto gpa = alloc::GpaSolver().solve(p);
  ASSERT_TRUE(gpa.is_ok()) << gpa.status().to_string();
  const core::Allocation& a = gpa.value().allocation;
  for (int f = 0; f < p.num_fpgas(); ++f) {
    EXPECT_TRUE(a.fpga_resources(f).fits_within(p.cap(f), 1e-6)) << f;
    EXPECT_LE(a.fpga_bw(f), p.bw_cap(f) + 1e-6) << f;
  }
}

}  // namespace
}  // namespace mfa
