#include <cstdio>

#include <gtest/gtest.h>

#include "io/serialize.hpp"
#include "io/table.hpp"

namespace mfa::io {
namespace {

TEST(TextTable, AlignedRendering) {
  TextTable t({"Kernel", "DSP (%)", "WCET"});
  t.add_row({"CONV1", "21.24", "13"});
  t.add_row({"POOL1-long-name", "0", "1.78"});
  const std::string s = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Columns align: every "CONV1" row pads to the widest cell.
  EXPECT_NE(s.find("Kernel"), std::string::npos);
  EXPECT_NE(s.find("POOL1-long-name"), std::string::npos);
  // Separator spans the width.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, FormattersAreStable) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_int(-42), "-42");
}

TEST(TextTable, CsvQuotesSpecialCells) {
  TextTable t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 4), "a,b\n");
}

TEST(TextTable, RowWidthEnforced) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Gnuplot, WritesDatAndScript) {
  const std::string dir = ::testing::TempDir();
  PlotSeries s1{"GP+A", {{55.0, 1.6}, {60.0, 1.5}}};
  PlotSeries s2{"MINLP", {{55.0, 1.55}}};
  ASSERT_TRUE(write_gnuplot(dir, "mfa_table_test_fig", "t", "x", "y",
                            {s1, s2})
                  .is_ok());
  auto dat = read_file(dir + "/mfa_table_test_fig.dat");
  ASSERT_TRUE(dat.is_ok());
  EXPECT_NE(dat.value().find("# GP+A"), std::string::npos);
  EXPECT_NE(dat.value().find("55.000000 1.600000"), std::string::npos);
  auto gp = read_file(dir + "/mfa_table_test_fig.gp");
  ASSERT_TRUE(gp.is_ok());
  EXPECT_NE(gp.value().find("index 1"), std::string::npos);
  EXPECT_NE(gp.value().find("title 'MINLP'"), std::string::npos);
  std::remove((dir + "/mfa_table_test_fig.dat").c_str());
  std::remove((dir + "/mfa_table_test_fig.gp").c_str());
}

}  // namespace
}  // namespace mfa::io
