// Randomized cross-cutting invariants over the whole stack. Each check
// encodes a theorem-like statement from DESIGN.md; violations indicate a
// real bug, not test flakiness (all rngs are seeded).
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "alloc/gpa.hpp"
#include "core/relaxation.hpp"
#include "sim/pipeline_sim.hpp"
#include "solver/candidates.hpp"
#include "solver/exact.hpp"
#include "solver/packing.hpp"
#include "testutil.hpp"

namespace mfa {
namespace {

class Property : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937 rng_{static_cast<unsigned>(GetParam()) * 65537u + 13u};
};

/// The relaxation lower-bounds every exact integer solution (the GP
/// bound of §3.2.1 is valid).
TEST_P(Property, RelaxationLowerBoundsExact) {
  core::Problem p = test::random_problem(rng_);
  p.beta = 0.0;
  auto relax = core::solve_relaxation(p);
  auto exact = solver::ExactSolver().solve(p);
  if (!exact.is_ok()) return;
  ASSERT_TRUE(relax.is_ok());  // integer-feasible ⇒ relaxation feasible
  EXPECT_LE(relax.value().ii, exact.value().ii * (1.0 + 1e-9));
}

/// Exact optimum II always equals some candidate value WCET_k/m.
TEST_P(Property, ExactIiIsACandidate) {
  core::Problem p = test::random_problem(rng_);
  p.beta = 0.0;
  auto exact = solver::ExactSolver().solve(p);
  if (!exact.is_ok()) return;
  bool found = false;
  for (double c : solver::candidate_iis(p)) {
    if (std::fabs(c - exact.value().ii) < 1e-9 * exact.value().ii) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << exact.value().ii;
}

/// The heuristic never reports an allocation violating the constraints
/// it was asked to respect, and never beats the exact optimum.
TEST_P(Property, HeuristicSoundAndDominated) {
  core::Problem p = test::random_problem(rng_);
  p.beta = 0.0;
  auto h = alloc::GpaSolver().solve(p);
  auto e = solver::ExactSolver().solve(p);
  if (!h.is_ok()) return;
  EXPECT_TRUE(h.value().allocation.feasible());
  ASSERT_TRUE(e.is_ok());  // heuristic feasible ⇒ exact feasible
  EXPECT_GE(h.value().allocation.ii(), e.value().ii * (1.0 - 1e-9));
}

/// Eq. 4 consolidation: merging all CUs of a kernel onto one FPGA never
/// increases φ_k (subadditivity of x/(1+x)).
TEST_P(Property, MergingCusNeverIncreasesSpreading) {
  core::Problem p = test::random_problem(rng_);
  std::uniform_int_distribution<int> cu(0, 3);
  core::Allocation spread(p);
  core::Allocation merged(p);
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    int total = 0;
    for (int f = 0; f < p.num_fpgas(); ++f) {
      const int n = cu(rng_);
      spread.set_cu(k, f, n);
      total += n;
    }
    merged.set_cu(k, 0, total);
    EXPECT_LE(merged.phi_k(k), spread.phi_k(k) + 1e-12);
  }
  EXPECT_LE(merged.phi(), spread.phi() + 1e-12);
}

/// Min-spreading packing is monotone: component-wise smaller totals can
/// only lower (or keep) the optimal φ — the argument ExactSolver's
/// minimal-totals choice rests on.
TEST_P(Property, PackingMonotoneInTotals) {
  core::Problem p = test::random_problem(rng_);
  std::uniform_int_distribution<int> cu(1, 3);
  std::vector<int> big(p.num_kernels());
  std::vector<int> small(p.num_kernels());
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    big[k] = cu(rng_);
    std::uniform_int_distribution<int> below(1, big[k]);
    small[k] = below(rng_);
  }
  solver::Budget b1;
  solver::Budget b2;
  auto rb = solver::PackingSolver(p).pack(
      big, solver::PackingMode::kMinSpreading, b1);
  auto rs = solver::PackingSolver(p).pack(
      small, solver::PackingMode::kMinSpreading, b2);
  ASSERT_TRUE(rb.proved_optimal && rs.proved_optimal);
  if (rb.feasible) {
    ASSERT_TRUE(rs.feasible);
    EXPECT_LE(rs.phi, rb.phi + 1e-9);
  }
}

/// Any feasible allocation simulates to exactly its analytical II; any
/// bandwidth-violating one simulates no faster.
TEST_P(Property, SimulationConsistentWithModel) {
  core::Problem p = test::random_problem(rng_);
  auto h = alloc::GpaSolver().solve(p);
  if (!h.is_ok()) return;
  const core::Allocation& a = h.value().allocation;
  sim::SimConfig cfg;
  cfg.num_images = 80;
  cfg.warmup_images = 20;
  sim::SimResult r = sim::PipelineSimulator(cfg).run(a);
  EXPECT_GE(r.measured_ii_ms, a.ii() * (1.0 - 1e-9));
  if (a.feasible()) {
    EXPECT_NEAR(r.measured_ii_ms, a.ii(), 1e-6 * a.ii());
  }
}

/// needed_cus inverts the candidate enumeration exactly.
TEST_P(Property, CandidateRoundTrip) {
  core::Problem p = test::random_problem(rng_);
  for (double t : solver::candidate_iis(p)) {
    for (std::size_t k = 0; k < p.num_kernels(); ++k) {
      const int n = solver::needed_cus(p.app.kernels[k].wcet_ms, t);
      // n CUs meet t; n−1 would not (unless n = 1).
      EXPECT_LE(p.app.kernels[k].wcet_ms / n, t * (1.0 + 1e-9));
      if (n > 1) {
        EXPECT_GT(p.app.kernels[k].wcet_ms / (n - 1), t * (1.0 - 1e-9));
      }
    }
  }
}

/// β = 0 exact II is never above the β > 0 exact II (adding a second
/// objective can only trade II away).
TEST_P(Property, SpreadingWeightTradesIi) {
  core::Problem p = test::random_problem(rng_);
  p.beta = 0.0;
  auto free = solver::ExactSolver().solve(p);
  p.beta = 1.0;
  auto weighted = solver::ExactSolver().solve(p);
  if (!free.is_ok() || !weighted.is_ok()) return;
  EXPECT_LE(free.value().ii, weighted.value().ii * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Property, ::testing::Range(1, 31));

}  // namespace
}  // namespace mfa
