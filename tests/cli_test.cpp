// ArgParser + command-table coverage. The help output is golden-tested:
// it is user-facing contract, and the golden keeps accidental wording /
// alignment churn out of unrelated diffs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"

namespace mfa::cli {
namespace {

Status parse(ArgParser& parser, std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, GoldenSolveHelp) {
  auto parser = command_parser("mfalloc_cli", "solve");
  ASSERT_TRUE(parser.is_ok());
  EXPECT_EQ(parser.value().usage_line(),
            "usage: mfalloc_cli solve <problem.json> [options]");
  const std::string expected =
      "usage: mfalloc_cli solve <problem.json> [options]\n"
      "\n"
      "Solve one problem with GP+A, or prove the optimum.\n"
      "\n"
      "options:\n"
      "  <problem.json>  problem file (see src/io/serialize.hpp)\n"
      "  --exact         prove the optimum with the exact branch-and-bound\n"
      "  --json          print the allocation as JSON instead of text\n"
      "  --help          show this help and exit\n";
  EXPECT_EQ(parser.value().help_text(), expected);
}

TEST(Cli, GoldenServeUsageLine) {
  auto parser = command_parser("mfalloc_cli", "serve");
  ASSERT_TRUE(parser.is_ok());
  // Required options surface in the usage line, not under [options].
  EXPECT_EQ(parser.value().usage_line(),
            "usage: mfalloc_cli serve --trace <trace.json> [options]");
}

TEST(Cli, GlobalUsageListsEveryCommand) {
  const std::string usage = global_usage("mfalloc_cli");
  EXPECT_EQ(usage.rfind("usage: mfalloc_cli <command> [args]", 0), 0u);
  for (const std::string& name : command_names()) {
    EXPECT_NE(usage.find("\n  " + name + " "), std::string::npos) << name;
    // Every listed command resolves to a parser.
    EXPECT_TRUE(command_parser("mfalloc_cli", name).is_ok()) << name;
  }
}

TEST(Cli, MfallocdParserShape) {
  ArgParser parser = mfallocd_parser("mfallocd");
  EXPECT_EQ(parser.usage_line(), "usage: mfallocd [options]");
  const std::string help = parser.help_text();
  for (const char* flag :
       {"--platform", "--port", "--data", "--shards", "--max-moves",
        "--max-disturbed", "--recover", "--no-fsync", "--help"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
}

TEST(Cli, ServeExposesStabilityBudgets) {
  auto parser = command_parser("mfalloc_cli", "serve");
  ASSERT_TRUE(parser.is_ok());
  const std::string help = parser.value().help_text();
  for (const char* flag : {"--max-moves", "--max-disturbed"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
  ASSERT_TRUE(parse(parser.value(), {"--trace", "t.json", "--max-moves",
                                     "4", "--max-disturbed", "1"})
                  .is_ok());
  EXPECT_EQ(parser.value().int_or("max-moves", -1, -1, 1 << 30).value(), 4);
  EXPECT_EQ(
      parser.value().int_or("max-disturbed", -1, -1, 1 << 30).value(), 1);
}

TEST(Cli, UnknownCommandRejected) {
  auto parser = command_parser("mfalloc_cli", "bogus");
  EXPECT_EQ(parser.status().code(), Code::kInvalid);
}

TEST(Cli, ParsesPositionalsFlagsAndOptions) {
  auto parser = command_parser("mfalloc_cli", "solve");
  ASSERT_TRUE(parser.is_ok());
  ASSERT_TRUE(parse(parser.value(), {"p.json", "--exact"}).is_ok());
  ASSERT_EQ(parser.value().positionals().size(), 1u);
  EXPECT_EQ(parser.value().positionals()[0], "p.json");
  EXPECT_TRUE(parser.value().flag_set("exact"));
  EXPECT_FALSE(parser.value().flag_set("json"));
}

TEST(Cli, InlineValuesAndLastOccurrenceWins) {
  auto parser = command_parser("mfalloc_cli", "portfolio");
  ASSERT_TRUE(parser.is_ok());
  ASSERT_TRUE(
      parse(parser.value(),
            {"p.json", "--seconds=2.5", "--seconds", "5", "--jobs=4"})
          .is_ok());
  EXPECT_EQ(parser.value().value_or("seconds", ""), "5");
  const auto seconds = parser.value().real_or("seconds", 0.0, 0.0, 100.0);
  ASSERT_TRUE(seconds.is_ok());
  EXPECT_DOUBLE_EQ(seconds.value(), 5.0);
  const auto jobs = parser.value().int_or("jobs", 1, 0, 64);
  ASSERT_TRUE(jobs.is_ok());
  EXPECT_EQ(jobs.value(), 4);
}

TEST(Cli, RejectsBadInvocations) {
  // Unknown flag.
  {
    auto parser = command_parser("mfalloc_cli", "solve");
    ASSERT_TRUE(parser.is_ok());
    const Status st = parse(parser.value(), {"p.json", "--nope"});
    EXPECT_EQ(st.code(), Code::kInvalid);
    EXPECT_NE(st.message().find("--nope"), std::string::npos);
  }
  // Missing positional.
  {
    auto parser = command_parser("mfalloc_cli", "solve");
    ASSERT_TRUE(parser.is_ok());
    const Status st = parse(parser.value(), {"--exact"});
    EXPECT_EQ(st.code(), Code::kInvalid);
    EXPECT_NE(st.message().find("problem.json"), std::string::npos);
  }
  // Missing required option.
  {
    auto parser = command_parser("mfalloc_cli", "serve");
    ASSERT_TRUE(parser.is_ok());
    const Status st = parse(parser.value(), {});
    EXPECT_EQ(st.code(), Code::kInvalid);
    EXPECT_NE(st.message().find("--trace"), std::string::npos);
  }
  // Boolean flag given a value.
  {
    auto parser = command_parser("mfalloc_cli", "solve");
    ASSERT_TRUE(parser.is_ok());
    EXPECT_EQ(parse(parser.value(), {"p.json", "--exact=1"}).code(),
              Code::kInvalid);
  }
  // Option at end of line with no value.
  {
    auto parser = command_parser("mfalloc_cli", "portfolio");
    ASSERT_TRUE(parser.is_ok());
    EXPECT_EQ(parse(parser.value(), {"p.json", "--seconds"}).code(),
              Code::kInvalid);
  }
  // Extra positional.
  {
    auto parser = command_parser("mfalloc_cli", "solve");
    ASSERT_TRUE(parser.is_ok());
    EXPECT_EQ(parse(parser.value(), {"p.json", "extra"}).code(),
              Code::kInvalid);
  }
  // Short options are not a thing (except -h).
  {
    auto parser = command_parser("mfalloc_cli", "solve");
    ASSERT_TRUE(parser.is_ok());
    EXPECT_EQ(parse(parser.value(), {"p.json", "-x"}).code(),
              Code::kInvalid);
  }
}

TEST(Cli, HelpShortCircuitsRequiredChecks) {
  auto parser = command_parser("mfalloc_cli", "serve");
  ASSERT_TRUE(parser.is_ok());
  // --trace is required, but --help must still succeed.
  ASSERT_TRUE(parse(parser.value(), {"--help"}).is_ok());
  EXPECT_TRUE(parser.value().help_requested());
}

TEST(Cli, BareDashIsAPositional) {
  auto parser = command_parser("mfalloc_cli", "gen");
  ASSERT_TRUE(parser.is_ok());
  ASSERT_TRUE(parse(parser.value(), {"-", "--seed", "7"}).is_ok());
  EXPECT_EQ(parser.value().positionals()[0], "-");
}

TEST(Cli, TypedAccessorsValidate) {
  ArgParser parser = mfallocd_parser("mfallocd");
  ASSERT_TRUE(parse(parser, {"--port", "notaport", "--shards", "999"})
                  .is_ok());
  const auto port = parser.int_or("port", 8080, 0, 65535);
  EXPECT_EQ(port.status().code(), Code::kInvalid);
  EXPECT_NE(port.status().message().find("--port"), std::string::npos);
  // In range [1, 256]? 999 is out of bounds (inclusive bounds).
  EXPECT_EQ(parser.int_or("shards", 2, 1, 256).status().code(),
            Code::kInvalid);
  // Absent → fallback, not an error.
  const auto jobs = parser.int_or("jobs", 1, 0, 4096);
  ASSERT_TRUE(jobs.is_ok());
  EXPECT_EQ(jobs.value(), 1);
}

TEST(Cli, ParseHelpersRejectGarbage) {
  EXPECT_TRUE(ArgParser::parse_int("7", "x", 0, 10).is_ok());
  EXPECT_FALSE(ArgParser::parse_int("7x", "x", 0, 10).is_ok());
  EXPECT_FALSE(ArgParser::parse_int("", "x", 0, 10).is_ok());
  EXPECT_FALSE(ArgParser::parse_int("11", "x", 0, 10).is_ok());
  EXPECT_TRUE(ArgParser::parse_real("2.5", "x", 0.0, 10.0).is_ok());
  EXPECT_FALSE(ArgParser::parse_real("2.5ms", "x", 0.0, 10.0).is_ok());
  EXPECT_FALSE(ArgParser::parse_real("nan", "x", 0.0, 10.0).is_ok());
}

}  // namespace
}  // namespace mfa::cli
