// OccupancyTracker unit coverage: ledger rebuild from a solved
// composite, per-pipeline placement records, the migration diff
// (target exemption, departures, fleet-width mismatches after a
// resize), and the packing-search stability reference it derives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "service/alloc_server.hpp"
#include "service/occupancy.hpp"
#include "testutil.hpp"

namespace mfa::service {
namespace {

/// Two pipelines over the tiny_problem kernel set: p0 = {a, b},
/// p1 = {c}, composite rows in that order.
std::vector<PipelineSpec> two_pipelines() {
  PipelineSpec p0;
  p0.id = "p0";
  p0.app.kernels = {test::make_kernel("a", 8.0, 10.0, 20.0, 5.0),
                    test::make_kernel("b", 12.0, 8.0, 15.0, 4.0)};
  PipelineSpec p1;
  p1.id = "p1";
  p1.app.kernels = {test::make_kernel("c", 4.0, 5.0, 10.0, 8.0)};
  return {p0, p1};
}

/// tiny_problem is exactly the two_pipelines composite (kernels a,b,c on
/// two FPGAs), so allocations built on it bind to both.
core::Allocation place(const core::Problem& problem,
                       const std::vector<std::vector<int>>& rows) {
  core::Allocation alloc(problem);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    for (std::size_t f = 0; f < rows[k].size(); ++f) {
      alloc.set_cu(k, static_cast<int>(f), rows[k][f]);
    }
  }
  return alloc;
}

TEST(OccupancyTracker, UpdateBuildsLedgerAndPlacements) {
  const core::Problem problem = test::tiny_problem();
  const auto pipelines = two_pipelines();
  const core::Allocation alloc =
      place(problem, {{2, 1}, {0, 2}, {1, 0}});

  OccupancyTracker occ;
  EXPECT_FALSE(occ.valid());
  occ.update(problem, pipelines, alloc);
  ASSERT_TRUE(occ.valid());

  ASSERT_EQ(occ.placements().size(), 2u);
  const PipelinePlacement* p0 = occ.placement("p0");
  ASSERT_NE(p0, nullptr);
  ASSERT_EQ(p0->rows.size(), 2u);
  EXPECT_EQ(p0->rows[0], (std::vector<int>{2, 1}));
  EXPECT_EQ(p0->rows[1], (std::vector<int>{0, 2}));
  EXPECT_EQ(p0->total_cus(), 5);
  const PipelinePlacement* p1 = occ.placement("p1");
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->rows[0], (std::vector<int>{1, 0}));
  EXPECT_EQ(occ.placement("nope"), nullptr);

  ASSERT_EQ(occ.devices().size(), 2u);
  EXPECT_EQ(occ.devices()[0].cus, 3);  // 2 + 0 + 1
  EXPECT_EQ(occ.devices()[1].cus, 3);  // 1 + 2 + 0
  // Effective (fraction-scaled) capacities, and used = what the rows pay.
  EXPECT_DOUBLE_EQ(occ.devices()[0].capacity[core::Resource::kBram], 80.0);
  EXPECT_DOUBLE_EQ(occ.devices()[0].used[core::Resource::kBram],
                   2 * 10.0 + 1 * 5.0);
  EXPECT_DOUBLE_EQ(occ.devices()[1].bw_used, 1 * 5.0 + 2 * 4.0);

  const auto stats = occ.statistics();
  EXPECT_EQ(stats.num_fpgas, 2);
  EXPECT_EQ(stats.num_pipelines, 2u);
  EXPECT_EQ(stats.total_cus, 6);
  EXPECT_GT(stats.peak_utilization, 0.0);
  EXPECT_GE(stats.peak_utilization, stats.mean_utilization);
  EXPECT_EQ(stats.updates, 1u);

  const std::string dump = occ.dump();
  EXPECT_NE(dump.find("2 FPGAs, 2 pipelines, 6 CUs"), std::string::npos);
  EXPECT_NE(dump.find("pipeline p0: 5 CUs [2,1] [0,2]"), std::string::npos);

  occ.clear();
  EXPECT_FALSE(occ.valid());
  EXPECT_TRUE(occ.placements().empty());
  EXPECT_TRUE(occ.devices().empty());
  EXPECT_EQ(occ.statistics().updates, 2u);
}

TEST(OccupancyTracker, DiffCountsTornCusAndDisturbedPipelines) {
  const core::Problem problem = test::tiny_problem();
  const auto pipelines = two_pipelines();
  OccupancyTracker occ;
  occ.update(problem, pipelines, place(problem, {{2, 1}, {0, 2}, {1, 0}}));

  // Identical candidate: a computed diff with nothing moved.
  AllocationDiff same = occ.diff_against(
      pipelines, place(problem, {{2, 1}, {0, 2}, {1, 0}}), "");
  EXPECT_TRUE(same.computed);
  EXPECT_EQ(same.cus_moved, 0);
  EXPECT_EQ(same.pipelines_disturbed, 0);

  // Kernel a loses one CU on FPGA 0 and gains one on FPGA 1: one torn
  // CU (only shrinkage counts), one disturbed pipeline.
  AllocationDiff moved = occ.diff_against(
      pipelines, place(problem, {{1, 2}, {0, 2}, {1, 0}}), "");
  EXPECT_EQ(moved.cus_moved, 1);
  EXPECT_EQ(moved.pipelines_disturbed, 1);

  // The event's own pipeline is exempt from both counters, mirroring
  // the packing-search budgets (its churn is the event's purpose).
  AllocationDiff target = occ.diff_against(
      pipelines, place(problem, {{1, 2}, {0, 2}, {1, 0}}), "p0");
  EXPECT_EQ(target.cus_moved, 0);
  EXPECT_EQ(target.pipelines_disturbed, 0);

  // Pure growth (a new CU lands on FPGA 0 for kernel c) changes the row
  // but tears nothing.
  AllocationDiff grown = occ.diff_against(
      pipelines, place(problem, {{2, 1}, {0, 2}, {2, 0}}), "");
  EXPECT_EQ(grown.cus_moved, 0);
  EXPECT_EQ(grown.pipelines_disturbed, 1);

  // An invalid tracker never claims a diff.
  OccupancyTracker empty;
  EXPECT_FALSE(empty.diff_against(pipelines, place(problem, {}), "")
                   .computed);
}

TEST(OccupancyTracker, DiffIgnoresDepartedRecords) {
  const core::Problem problem = test::tiny_problem();
  const auto pipelines = two_pipelines();
  OccupancyTracker occ;
  occ.update(problem, pipelines, place(problem, {{2, 1}, {0, 2}, {1, 0}}));

  // p1 departs: the survivor composite is just p0's two kernels. Its
  // record is a departure, not a migration — freed CUs are free no
  // matter what the solver decides, so the budgeted counters see
  // nothing (with or without the remove attributed via target_id).
  core::Problem survivor = problem;
  survivor.app.kernels.pop_back();
  const std::vector<PipelineSpec> remaining = {pipelines[0]};
  const core::Allocation keep = place(survivor, {{2, 1}, {0, 2}});
  for (const char* target : {"", "p1"}) {
    AllocationDiff gone = occ.diff_against(remaining, keep, target);
    EXPECT_TRUE(gone.computed);
    EXPECT_EQ(gone.cus_moved, 0) << target;
    EXPECT_EQ(gone.pipelines_disturbed, 0) << target;
  }

  // The survivor still pays for its own moves.
  AllocationDiff shuffled =
      occ.diff_against(remaining, place(survivor, {{1, 2}, {0, 2}}), "");
  EXPECT_EQ(shuffled.cus_moved, 1);
  EXPECT_EQ(shuffled.pipelines_disturbed, 1);
}

TEST(OccupancyTracker, DiffSurvivesFleetWidthMismatch) {
  // Records were taken on 2 FPGAs; after a resize the candidate runs on
  // 3. Width mismatches must diff as implicit zeros, both directions.
  const core::Problem before = test::tiny_problem();
  const auto pipelines = two_pipelines();
  OccupancyTracker occ;
  occ.update(before, pipelines, place(before, {{2, 1}, {0, 2}, {1, 0}}));

  core::Problem after = before;
  after.platform = core::Platform{"3fpga", 3};
  // Kernel b's pair moves from FPGA 1 to the new FPGA 2.
  AllocationDiff widened = occ.diff_against(
      pipelines, place(after, {{2, 1, 0}, {0, 0, 2}, {1, 0, 0}}), "");
  EXPECT_TRUE(widened.computed);
  EXPECT_EQ(widened.cus_moved, 2);
  EXPECT_EQ(widened.pipelines_disturbed, 1);

  // Shrink: records on 3 FPGAs, candidate on 2 — the CUs on the
  // removed device count as torn.
  OccupancyTracker wide;
  wide.update(after, pipelines,
              place(after, {{2, 1, 0}, {0, 0, 2}, {1, 0, 0}}));
  AllocationDiff narrowed = wide.diff_against(
      pipelines, place(before, {{2, 1}, {0, 2}, {1, 0}}), "");
  EXPECT_EQ(narrowed.cus_moved, 2);
  EXPECT_EQ(narrowed.pipelines_disturbed, 1);
}

TEST(OccupancyTracker, MakeStabilityMirrorsRecordsAndExemptsTarget) {
  const core::Problem problem = test::tiny_problem();
  const auto pipelines = two_pipelines();
  OccupancyTracker occ;
  occ.update(problem, pipelines, place(problem, {{2, 1}, {0, 2}, {1, 0}}));

  solver::StabilityOptions stab = occ.make_stability(pipelines, "p1");
  ASSERT_EQ(stab.reference.size(), 3u);
  EXPECT_EQ(stab.reference[0], (std::vector<int>{2, 1}));
  EXPECT_EQ(stab.reference[1], (std::vector<int>{0, 2}));
  EXPECT_EQ(stab.reference[2], (std::vector<int>{1, 0}));
  EXPECT_EQ(stab.group_of, (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(stab.exempt_group, 1);

  // No target: nothing exempt.
  EXPECT_EQ(occ.make_stability(pipelines, "").exempt_group, -1);

  // A new arrival (no record yet) gets an empty — i.e. exempt —
  // reference row, and its own group.
  PipelineSpec fresh;
  fresh.id = "p2";
  fresh.app.kernels = {test::make_kernel("d", 5.0, 6.0, 9.0, 2.0)};
  auto grown = pipelines;
  grown.push_back(fresh);
  solver::StabilityOptions with_new = occ.make_stability(grown, "p2");
  ASSERT_EQ(with_new.reference.size(), 4u);
  EXPECT_TRUE(with_new.reference[3].empty());
  EXPECT_EQ(with_new.group_of, (std::vector<int>{0, 0, 1, 2}));
  EXPECT_EQ(with_new.exempt_group, 2);
}

}  // namespace
}  // namespace mfa::service
