// Shared helpers for the mfalloc test suite: seeded random problem
// instances (small enough for the naive oracle) and convenience builders.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "core/problem.hpp"

namespace mfa::test {

/// Deterministic kernel builder (BRAM/DSP axes, % of one FPGA).
inline core::Kernel make_kernel(const std::string& name, double wcet_ms,
                                double bram, double dsp, double bw) {
  return core::Kernel{name, wcet_ms, core::ResourceVec(bram, dsp, 0.0, 0.0),
                      bw};
}

/// A small fully-specified problem used by many unit tests: three
/// kernels, two FPGAs, generous caps.
inline core::Problem tiny_problem() {
  core::Problem p;
  p.app.name = "tiny";
  p.app.kernels = {
      make_kernel("a", 8.0, 10.0, 20.0, 5.0),
      make_kernel("b", 12.0, 8.0, 15.0, 4.0),
      make_kernel("c", 4.0, 5.0, 10.0, 8.0),
  };
  p.platform = core::Platform{"2fpga", 2};
  p.resource_fraction = 0.8;
  p.alpha = 1.0;
  p.beta = 0.5;
  return p;
}

struct RandomSpec {
  int min_kernels = 2;
  int max_kernels = 4;
  int min_fpgas = 1;
  int max_fpgas = 3;
  double max_wcet = 20.0;
  double max_res = 40.0;  ///< per-CU axis demand upper bound (%)
  double max_bw = 15.0;
  double min_fraction = 0.5;
  double max_beta = 2.0;
};

/// Random problem small enough for the naive MINLP oracle. Guaranteed to
/// pass Problem::validate() (each kernel fits at least one CU).
inline core::Problem random_problem(std::mt19937& rng,
                                    const RandomSpec& spec = {}) {
  std::uniform_int_distribution<int> kdist(spec.min_kernels,
                                           spec.max_kernels);
  std::uniform_int_distribution<int> fdist(spec.min_fpgas, spec.max_fpgas);
  std::uniform_real_distribution<double> u(0.0, 1.0);

  core::Problem p;
  p.platform = core::Platform{"rand", fdist(rng)};
  p.resource_fraction =
      spec.min_fraction + (1.0 - spec.min_fraction) * u(rng);
  p.alpha = 1.0;
  p.beta = u(rng) < 0.5 ? 0.0 : spec.max_beta * u(rng);

  const int num_kernels = kdist(rng);
  const double cap = 100.0 * p.resource_fraction;
  for (int k = 0; k < num_kernels; ++k) {
    core::Kernel kern;
    kern.name = "k" + std::to_string(k);
    kern.wcet_ms = 0.5 + spec.max_wcet * u(rng);
    // Demands capped below the effective cap so one CU always fits.
    kern.res[core::Resource::kBram] = std::min(spec.max_res * u(rng),
                                               cap * 0.9);
    kern.res[core::Resource::kDsp] = std::min(spec.max_res * u(rng),
                                              cap * 0.9);
    kern.bw = std::min(spec.max_bw * u(rng), 90.0);
    p.app.kernels.push_back(kern);
  }
  return p;
}

}  // namespace mfa::test
