// Row-level fidelity of the embedded paper datasets (Tables 2–3): every
// figure reproduction rests on these constants, so each row is pinned
// individually, parameterized over the tables.
#include <gtest/gtest.h>

#include "hls/paper.hpp"

namespace mfa::hls {
namespace {

struct Row {
  const char* app;
  const char* kernel;
  double bram;
  double dsp;
  double bw;
  double wcet;
};

core::Application app_of(const std::string& name) {
  if (name == "alex32") return paper::alex32();
  if (name == "alex16") return paper::alex16();
  return paper::vgg16();
}

class PaperRow : public ::testing::TestWithParam<Row> {};

TEST_P(PaperRow, MatchesPublishedValue) {
  const Row& row = GetParam();
  const core::Application app = app_of(row.app);
  const core::Kernel* found = nullptr;
  for (const core::Kernel& k : app.kernels) {
    if (k.name == row.kernel) {
      found = &k;
      break;
    }
  }
  ASSERT_NE(found, nullptr) << row.app << "/" << row.kernel;
  EXPECT_DOUBLE_EQ(found->res[core::Resource::kBram], row.bram);
  EXPECT_DOUBLE_EQ(found->res[core::Resource::kDsp], row.dsp);
  EXPECT_DOUBLE_EQ(found->bw, row.bw);
  EXPECT_DOUBLE_EQ(found->wcet_ms, row.wcet);
  // LUT/FF are not reported by the paper and must stay inactive (zero).
  EXPECT_DOUBLE_EQ(found->res[core::Resource::kLut], 0.0);
  EXPECT_DOUBLE_EQ(found->res[core::Resource::kFf], 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Table2Alex32, PaperRow,
    ::testing::Values(Row{"alex32", "CONV1", 13.07, 21.24, 1.3, 13.0},
                      Row{"alex32", "POOL1", 2.84, 0.0, 7.03, 1.78},
                      Row{"alex32", "NORM1", 6.10, 2.11, 5.7, 0.839},
                      Row{"alex32", "CONV2", 8.73, 37.59, 2.4, 7.19},
                      Row{"alex32", "NORM2", 7.75, 2.11, 3.7, 0.807},
                      Row{"alex32", "CONV3", 5.22, 28.13, 5.0, 7.78},
                      Row{"alex32", "CONV4", 2.13, 37.50, 3.7, 9.08},
                      Row{"alex32", "CONV5", 8.73, 37.50, 4.2, 4.84}));

INSTANTIATE_TEST_SUITE_P(
    Table2Alex16, PaperRow,
    ::testing::Values(Row{"alex16", "CONV1", 10.59, 4.31, 1.8, 5.16},
                      Row{"alex16", "POOL1", 0.05, 0.0, 3.5, 1.78},
                      Row{"alex16", "NORM1", 2.53, 0.06, 3.1, 0.78},
                      Row{"alex16", "CONV2", 4.39, 7.63, 2.1, 4.11},
                      Row{"alex16", "NORM2", 6.66, 0.06, 2.2, 0.67},
                      Row{"alex16", "CONV3", 2.63, 5.66, 2.9, 6.70},
                      Row{"alex16", "CONV4", 1.91, 7.55, 3.2, 5.06},
                      Row{"alex16", "CONV5", 4.39, 7.55, 3.1, 3.29}));

INSTANTIATE_TEST_SUITE_P(
    Table3Vgg, PaperRow,
    ::testing::Values(Row{"vgg", "CONV1", 3.67, 2.95, 2.0, 28.8},
                      Row{"vgg", "CONV2", 9.97, 15.14, 2.1, 67.8},
                      Row{"vgg", "POOL2", 11.62, 0.03, 5.2, 13.3},
                      Row{"vgg", "CONV3", 9.97, 15.14, 2.3, 22.7},
                      Row{"vgg", "CONV4", 9.97, 15.14, 2.4, 32.1},
                      Row{"vgg", "POOL4", 2.94, 0.03, 5.1, 6.9},
                      Row{"vgg", "CONV5", 8.32, 15.07, 2.0, 22.8},
                      Row{"vgg", "CONV6", 8.32, 15.05, 2.3, 32.9},
                      Row{"vgg", "CONV7", 8.32, 15.05, 2.3, 32.9},
                      Row{"vgg", "POOL7", 1.50, 0.03, 5.0, 3.5},
                      Row{"vgg", "CONV8", 2.12, 15.02, 2.1, 24.5},
                      Row{"vgg", "CONV9", 2.12, 15.02, 2.5, 37.7},
                      Row{"vgg", "CONV10", 2.12, 15.02, 2.5, 37.7},
                      Row{"vgg", "POOL10", 0.05, 0.01, 4.0, 2.1},
                      Row{"vgg", "CONV11", 2.12, 14.99, 2.6, 20.3},
                      Row{"vgg", "CONV12", 2.12, 14.99, 2.6, 20.3},
                      Row{"vgg", "CONV13", 2.12, 14.99, 2.6, 20.3}));

/// Kernel ordering matters (it defines the pipeline): pin the order.
TEST(PaperOrder, PipelinesKeepTableOrder) {
  const auto a32 = paper::alex32();
  EXPECT_EQ(a32.kernels.front().name, "CONV1");
  EXPECT_EQ(a32.kernels.back().name, "CONV5");
  const auto vgg = paper::vgg16();
  EXPECT_EQ(vgg.kernels[2].name, "POOL2");
  EXPECT_EQ(vgg.kernels[13].name, "POOL10");
  EXPECT_EQ(vgg.kernels.back().name, "CONV13");
}

}  // namespace
}  // namespace mfa::hls
