// Cross-module integration tests: the full GP → discretize → allocate →
// simulate chain on the paper's own workloads, and the figure-level
// relationships the evaluation section reports.
#include <gtest/gtest.h>

#include "alloc/gpa.hpp"
#include "alloc/sweep.hpp"
#include "hls/cost_model.hpp"
#include "hls/paper.hpp"
#include "io/serialize.hpp"
#include "sim/pipeline_sim.hpp"
#include "solver/exact.hpp"

namespace mfa {
namespace {

solver::ExactOptions bench_budget() {
  solver::ExactOptions opts;
  opts.max_nodes = 2'000'000;
  opts.max_seconds = 20.0;
  return opts;
}

TEST(Integration, Alex16HeuristicTracksExactAcrossConstraints) {
  // Fig. 3(a): GP+A ≥ MINLP everywhere, within 35 % across the range and
  // matching at the loose end.
  for (double rc : {0.60, 0.70, 0.80}) {
    core::Problem p = hls::paper::case_alex16_2fpga();
    p.resource_fraction = rc;
    auto h = alloc::GpaSolver().solve(p);
    core::Problem p0 = p;
    p0.beta = 0.0;
    auto e = solver::ExactSolver(bench_budget()).solve(p0);
    ASSERT_TRUE(h.is_ok()) << rc;
    ASSERT_TRUE(e.is_ok()) << rc;
    const double hi = h.value().allocation.ii();
    EXPECT_GE(hi, e.value().ii * (1.0 - 1e-9)) << rc;
    EXPECT_LE(hi, e.value().ii * 1.35) << rc;
  }
}

TEST(Integration, Alex16CatchesTheLooseExtreme) {
  core::Problem p = hls::paper::case_alex16_2fpga();
  p.resource_fraction = 0.85;
  auto h = alloc::GpaSolver().solve(p);
  core::Problem p0 = p;
  p0.beta = 0.0;
  auto e = solver::ExactSolver(bench_budget()).solve(p0);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(e.is_ok());
  EXPECT_NEAR(h.value().allocation.ii(), e.value().ii,
              1e-6 * e.value().ii);
}

TEST(Integration, SimulatorConfirmsHeuristicAllocations) {
  // The simulator's steady-state II equals the analytical II for every
  // (feasible) heuristic allocation — model and execution agree.
  for (core::Problem p : {hls::paper::case_alex16_2fpga(),
                          hls::paper::case_alex32_4fpga(),
                          hls::paper::case_vgg_8fpga()}) {
    p.resource_fraction = 0.7;
    auto h = alloc::GpaSolver().solve(p);
    ASSERT_TRUE(h.is_ok()) << p.app.name;
    sim::SimResult r = sim::PipelineSimulator().run(h.value().allocation);
    EXPECT_NEAR(r.measured_ii_ms, h.value().allocation.ii(),
                1e-6 * r.measured_ii_ms)
        << p.app.name;
    EXPECT_DOUBLE_EQ(r.max_throttle, 1.0) << p.app.name;
  }
}

TEST(Integration, ConsolidationStory) {
  // §4 / Fig. 6: GP+A and MINLP+G concentrate kernels on fewer FPGAs
  // than MINLP (β = 0) — measured here by the spreading value.
  core::Problem p = hls::paper::case_vgg_8fpga();
  p.resource_fraction = 0.61;
  auto gpa = alloc::GpaSolver().solve(p);
  core::Problem p0 = p;
  p0.beta = 0.0;
  auto minlp = solver::ExactSolver(bench_budget()).solve(p0);
  auto minlp_g = solver::ExactSolver(bench_budget()).solve(p);
  ASSERT_TRUE(gpa.is_ok());
  ASSERT_TRUE(minlp.is_ok());
  ASSERT_TRUE(minlp_g.is_ok());
  // The spreading-aware solutions never spread more than the β=0 one
  // achieved by chance, and II of the β=0 run lower-bounds both.
  EXPECT_LE(minlp_g.value().phi, minlp.value().phi + 1e-9);
  EXPECT_LE(minlp.value().ii, minlp_g.value().ii + 1e-9);
  EXPECT_LE(minlp.value().ii, gpa.value().allocation.ii() + 1e-9);
}

TEST(Integration, ModeledNetworkFlowsThroughWholePipeline) {
  // Characterize VGG-16 with the analytical cost model (not the paper
  // dataset), then solve and simulate — the full "new network" user
  // journey.
  const hls::CostModel model(hls::Device::vu9p());
  core::Problem p;
  p.app = model.characterize_network(hls::vgg16(), hls::DataType::kFixed16,
                                     12.0);
  p.platform = hls::paper::f1(4);
  p.resource_fraction = 0.8;
  ASSERT_TRUE(p.validate().is_ok());
  auto h = alloc::GpaSolver().solve(p);
  ASSERT_TRUE(h.is_ok()) << h.status().to_string();
  EXPECT_TRUE(h.value().allocation.feasible());
  sim::SimResult r = sim::PipelineSimulator().run(h.value().allocation);
  EXPECT_NEAR(r.measured_ii_ms, h.value().allocation.ii(), 1e-6);
}

TEST(Integration, JsonRoundTripPreservesSolverResults) {
  // Serializing a problem and re-solving gives the identical allocation
  // metrics — the CLI/examples path is faithful.
  core::Problem p = hls::paper::case_alex32_4fpga();
  p.resource_fraction = 0.7;
  auto direct = alloc::GpaSolver().solve(p);
  ASSERT_TRUE(direct.is_ok());

  auto round = io::problem_from_text(io::to_json(p).dump());
  ASSERT_TRUE(round.is_ok());
  auto reparsed = alloc::GpaSolver().solve(round.value());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_DOUBLE_EQ(reparsed.value().allocation.ii(),
                   direct.value().allocation.ii());
  EXPECT_DOUBLE_EQ(reparsed.value().allocation.phi(),
                   direct.value().allocation.phi());
}

TEST(Integration, TSensitivityIsMild) {
  // Fig. 2's finding: T has little effect on II for Alex-16.
  core::Problem p = hls::paper::case_alex16_2fpga();
  p.resource_fraction = 0.60;
  double ii_t0 = 0.0;
  double ii_t30 = 0.0;
  {
    auto r = alloc::GpaSolver().solve(p);
    ASSERT_TRUE(r.is_ok());
    ii_t0 = r.value().allocation.ii();
  }
  {
    alloc::GpaOptions opts;
    opts.greedy.t_max = 0.30;
    auto r = alloc::GpaSolver(opts).solve(p);
    ASSERT_TRUE(r.is_ok());
    ii_t30 = r.value().allocation.ii();
  }
  // Relaxing the allocator constraint can only help, and only mildly.
  EXPECT_LE(ii_t30, ii_t0 + 1e-9);
  EXPECT_GE(ii_t30, ii_t0 * 0.7);
}

}  // namespace
}  // namespace mfa
