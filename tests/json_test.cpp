#include <gtest/gtest.h>

#include "io/json.hpp"

namespace mfa::io {
namespace {

TEST(Json, ScalarConstruction) {
  EXPECT_TRUE(Json::null().is_null());
  EXPECT_TRUE(Json::boolean(true).as_bool());
  EXPECT_DOUBLE_EQ(Json::number(2.5).as_number(), 2.5);
  EXPECT_EQ(Json::string("hi").as_string(), "hi");
}

TEST(Json, ArrayAndObjectBuilding) {
  Json arr = Json::array();
  arr.push_back(Json::number(1));
  arr.push_back(Json::string("two"));
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_DOUBLE_EQ(arr.at(0).as_number(), 1.0);

  Json obj = Json::object();
  obj.set("a", Json::number(1));
  obj.set("b", Json::boolean(false));
  obj.set("a", Json::number(9));  // overwrite keeps one entry
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_DOUBLE_EQ(obj.find("a")->as_number(), 9.0);
  EXPECT_FALSE(obj.has("missing"));
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_TRUE(Json::parse("true").value().as_bool());
  EXPECT_FALSE(Json::parse("false").value().as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").value().as_number(), -1250.0);
  EXPECT_EQ(Json::parse("\"a\\nb\"").value().as_string(), "a\nb");
}

TEST(Json, ParseNested) {
  auto doc = Json::parse(R"({"k": [1, {"x": "y"}, null], "n": 3})");
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const Json& j = doc.value();
  ASSERT_TRUE(j.is_object());
  const Json* k = j.find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->size(), 3u);
  EXPECT_EQ(k->at(1).find("x")->as_string(), "y");
  EXPECT_TRUE(k->at(2).is_null());
}

TEST(Json, ParseUnicodeEscape) {
  auto doc = Json::parse(R"("Aé€")");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().as_string(), "A\xC3\xA9\xE2\x82\xAC");  // A é €
}

TEST(Json, ParseErrorsCarryOffsets) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "01a",
        "[1] trailing", "{\"a\":}", "nan"}) {
    auto doc = Json::parse(bad);
    EXPECT_FALSE(doc.is_ok()) << bad;
    EXPECT_EQ(doc.status().code(), Code::kInvalid) << bad;
    EXPECT_NE(doc.status().message().find("offset"), std::string::npos)
        << bad;
  }
}

TEST(Json, RejectsDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::parse(deep).is_ok());
}

TEST(Json, DumpCompactRoundTrips) {
  const char* text = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  auto doc = Json::parse(text);
  ASSERT_TRUE(doc.is_ok());
  const std::string dumped = doc.value().dump();
  auto again = Json::parse(dumped);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().dump(), dumped);
}

TEST(Json, DumpPrettyIsIndentedAndParses) {
  Json obj = Json::object();
  obj.set("name", Json::string("x"));
  Json arr = Json::array();
  arr.push_back(Json::number(1));
  obj.set("values", std::move(arr));
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find("\n  \"name\""), std::string::npos) << pretty;
  EXPECT_TRUE(Json::parse(pretty).is_ok());
}

TEST(Json, DumpEscapesControlCharacters) {
  Json s = Json::string(std::string("tab\t quote\" back\\ bell\x07"));
  const std::string dumped = s.dump();
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  EXPECT_NE(dumped.find("\\\""), std::string::npos);
  EXPECT_NE(dumped.find("\\\\"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0007"), std::string::npos);
  auto round = Json::parse(dumped);
  ASSERT_TRUE(round.is_ok());
  EXPECT_EQ(round.value().as_string(), s.as_string());
}

TEST(Json, NumbersPrintIntegersCleanly) {
  EXPECT_EQ(Json::number(42).dump(), "42");
  EXPECT_EQ(Json::number(-7).dump(), "-7");
  // Round-trip of non-integers preserves the value.
  auto v = Json::parse(Json::number(0.1).dump());
  ASSERT_TRUE(v.is_ok());
  EXPECT_DOUBLE_EQ(v.value().as_number(), 0.1);
}

TEST(Json, WhitespaceTolerance) {
  auto doc = Json::parse("  {\n\t\"a\" :  [ 1 , 2 ]\r\n}  ");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value().find("a")->size(), 2u);
}

}  // namespace
}  // namespace mfa::io
