#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/relaxation.hpp"
#include "hls/paper.hpp"
#include "testutil.hpp"

namespace mfa::core {
namespace {

using test::make_kernel;
using test::tiny_problem;

TEST(RelaxationBisection, SingleKernelResourceBound) {
  // One kernel, one FPGA, DSP 20% per CU, cap 80% → N̂ = 4, ÎI = 10/4.
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 0.0, 20.0, 0.0)};
  p.platform = Platform{"1", 1};
  p.resource_fraction = 0.8;
  auto sol = solve_relaxation(p);
  ASSERT_TRUE(sol.is_ok());
  EXPECT_NEAR(sol.value().n_hat[0], 4.0, 1e-9);
  EXPECT_NEAR(sol.value().ii, 2.5, 1e-9);
}

TEST(RelaxationBisection, BandwidthBound) {
  // Bandwidth is the binding constraint: 10% per CU, cap 50% → N̂ = 5.
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 1.0, 1.0, 10.0)};
  p.platform = Platform{"1", 1};
  p.bw_fraction = 0.5;
  auto sol = solve_relaxation(p);
  ASSERT_TRUE(sol.is_ok());
  EXPECT_NEAR(sol.value().n_hat[0], 5.0, 1e-9);
  EXPECT_NEAR(sol.value().ii, 2.0, 1e-9);
}

TEST(RelaxationBisection, MinOneCuKeepsNonCriticalKernelAtOne) {
  // Kernel b is so fast that its N̂ stays at the lower bound 1.
  Problem p;
  p.app.kernels = {make_kernel("slow", 100.0, 0.0, 10.0, 0.0),
                   make_kernel("fast", 0.001, 0.0, 10.0, 0.0)};
  p.platform = Platform{"1", 1};
  auto sol = solve_relaxation(p);
  ASSERT_TRUE(sol.is_ok());
  EXPECT_NEAR(sol.value().n_hat[1], 1.0, 1e-9);
  // Slow kernel takes the remaining 90% → 9 CUs.
  EXPECT_NEAR(sol.value().n_hat[0], 9.0, 1e-6);
}

TEST(RelaxationBisection, InfeasibleWhenMinCusExceedPool) {
  Problem p;
  p.app.kernels = {make_kernel("a", 1.0, 0.0, 60.0, 0.0),
                   make_kernel("b", 1.0, 0.0, 60.0, 0.0)};
  p.platform = Platform{"1", 1};
  auto sol = solve_relaxation(p);
  EXPECT_FALSE(sol.is_ok());
  EXPECT_EQ(sol.status().code(), Code::kInfeasible);
}

TEST(RelaxationBisection, RespectsUpperBounds) {
  Problem p;
  p.app.kernels = {make_kernel("k", 10.0, 0.0, 1.0, 0.0)};
  p.platform = Platform{"1", 1};
  CuBounds b = CuBounds::defaults(p);
  b.upper[0] = 2.0;
  auto sol = solve_relaxation(p, b);
  ASSERT_TRUE(sol.is_ok());
  EXPECT_NEAR(sol.value().n_hat[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.value().ii, 5.0, 1e-9);
}

TEST(RelaxationBisection, EmptyBoundIntervalIsInfeasible) {
  Problem p = tiny_problem();
  CuBounds b = CuBounds::defaults(p);
  b.lower[0] = 5.0;
  b.upper[0] = 4.0;
  auto sol = solve_relaxation(p, b);
  EXPECT_EQ(sol.status().code(), Code::kInfeasible);
}

TEST(RelaxationGp, ModelHasExpectedShape) {
  Problem p = tiny_problem();
  gp::GpProblem model = build_relaxation_gp(p, CuBounds::defaults(p));
  // Variables: II + one per kernel.
  EXPECT_EQ(model.num_variables(), 1 + p.num_kernels());
  // Constraints: latency + lower bound + upper bound per kernel, plus
  // two active resource axes (BRAM, DSP) and bandwidth.
  EXPECT_EQ(model.constraints().size(), 3 * p.num_kernels() + 3);
}

TEST(RelaxationGp, AgreesWithBisectionOnTiny) {
  Problem p = tiny_problem();
  auto exact = solve_relaxation(p);
  auto via_gp = solve_relaxation_gp(p);
  ASSERT_TRUE(exact.is_ok());
  ASSERT_TRUE(via_gp.is_ok());
  EXPECT_NEAR(via_gp.value().ii, exact.value().ii,
              1e-4 * exact.value().ii);
}

TEST(RelaxationGp, AgreesWithBisectionOnPaperCases) {
  for (const Problem& base :
       {hls::paper::case_alex16_2fpga(), hls::paper::case_alex32_4fpga(),
        hls::paper::case_vgg_8fpga()}) {
    Problem p = base;
    p.resource_fraction = 0.7;
    auto exact = solve_relaxation(p);
    auto via_gp = solve_relaxation_gp(p);
    ASSERT_TRUE(exact.is_ok()) << p.app.name;
    ASSERT_TRUE(via_gp.is_ok()) << p.app.name;
    EXPECT_NEAR(via_gp.value().ii, exact.value().ii,
                1e-3 * exact.value().ii)
        << p.app.name;
  }
}

/// Property: across random instances the GP interior-point solution
/// matches the exact bisection optimum, and the returned N̂ is feasible.
class RandomRelaxation : public ::testing::TestWithParam<int> {};

TEST_P(RandomRelaxation, GpMatchesBisection) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u);
  Problem p = test::random_problem(rng);
  ASSERT_TRUE(p.validate().is_ok());

  auto exact = solve_relaxation(p);
  auto via_gp = solve_relaxation_gp(p);
  ASSERT_EQ(exact.is_ok(), via_gp.is_ok());
  if (!exact.is_ok()) return;

  EXPECT_NEAR(via_gp.value().ii, exact.value().ii,
              1e-3 * exact.value().ii + 1e-9);

  // Feasibility of the bisection solution: pooled constraints hold and
  // every kernel meets the returned ÎI.
  const RelaxedSolution& sol = exact.value();
  const double f = p.num_fpgas();
  double dsp = 0.0;
  double bram = 0.0;
  double bw = 0.0;
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    EXPECT_GE(sol.n_hat[k], 1.0 - 1e-9);
    EXPECT_LE(p.app.kernels[k].wcet_ms / sol.n_hat[k],
              sol.ii * (1.0 + 1e-9));
    dsp += sol.n_hat[k] * p.app.kernels[k].res[Resource::kDsp];
    bram += sol.n_hat[k] * p.app.kernels[k].res[Resource::kBram];
    bw += sol.n_hat[k] * p.app.kernels[k].bw;
  }
  EXPECT_LE(dsp, f * p.cap()[Resource::kDsp] * (1.0 + 1e-6));
  EXPECT_LE(bram, f * p.cap()[Resource::kBram] * (1.0 + 1e-6));
  EXPECT_LE(bw, f * p.bw_cap() * (1.0 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRelaxation, ::testing::Range(1, 26));

/// Property: the relaxed ÎI is monotone non-increasing in the resource
/// constraint (more resources can never hurt).
class MonotoneRelaxation : public ::testing::TestWithParam<int> {};

TEST_P(MonotoneRelaxation, IiMonotoneInConstraint) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u);
  Problem p = test::random_problem(rng);
  double previous = std::numeric_limits<double>::infinity();
  for (double rc = 0.5; rc <= 1.0; rc += 0.1) {
    p.resource_fraction = rc;
    auto sol = solve_relaxation(p);
    if (!sol.is_ok()) continue;  // tight fractions may be infeasible
    EXPECT_LE(sol.value().ii, previous * (1.0 + 1e-9));
    previous = sol.value().ii;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotoneRelaxation, ::testing::Range(1, 16));

}  // namespace
}  // namespace mfa::core
