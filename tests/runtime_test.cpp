#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gp/batched.hpp"
#include "hls/paper.hpp"
#include "runtime/batch.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/relax_cache.hpp"
#include "runtime/sweep.hpp"
#include "runtime/thread_pool.hpp"
#include "testutil.hpp"

namespace mfa::runtime {
namespace {

// Node-capped, wall-clock-free portfolio: deterministic by construction.
PortfolioOptions deterministic_portfolio(std::int64_t exact_nodes) {
  PortfolioOptions o;
  o.gpa_t_max = {0.0, 0.05, 0.10};
  o.run_exact = true;
  o.max_nodes = exact_nodes;
  o.max_seconds = 3600.0;
  return o;
}

std::vector<core::Problem> random_grid(int count, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<core::Problem> grid;
  grid.reserve(count);
  for (int i = 0; i < count; ++i) {
    grid.push_back(test::random_problem(rng));
  }
  return grid;
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool must block until all 50 ran
  EXPECT_EQ(counter.load(), 50);
}

TEST(Portfolio, NeverWorseThanAnyIndividualStrategy) {
  // The core portfolio guarantee: on the same instance, racing all
  // strategies returns a goal ≤ the best of each run individually.
  std::mt19937 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const core::Problem problem = test::random_problem(rng);

    double best_individual = std::numeric_limits<double>::infinity();
    for (double t : {0.0, 0.05, 0.10}) {
      PortfolioOptions solo;
      solo.gpa_t_max = {t};
      solo.run_exact = false;
      const SolveResult r = Portfolio(solo, 1).solve(problem);
      if (r.is_ok()) best_individual = std::min(best_individual, r.goal);
    }
    {
      PortfolioOptions solo = deterministic_portfolio(200'000);
      solo.gpa_t_max.clear();
      const SolveResult r = Portfolio(solo, 1).solve(problem);
      if (r.is_ok()) best_individual = std::min(best_individual, r.goal);
    }

    const SolveResult full =
        Portfolio(deterministic_portfolio(200'000), 1).solve(problem);
    if (!std::isfinite(best_individual)) continue;  // all-infeasible draw
    ASSERT_TRUE(full.is_ok());
    EXPECT_LE(full.goal, best_individual + 1e-9);
  }
}

TEST(Portfolio, PaperCaseNotWorseThanIndividuals) {
  core::Problem problem = hls::paper::case_alex16_2fpga();
  problem.resource_fraction = 0.7;

  PortfolioOptions gpa_only;
  gpa_only.gpa_t_max = {0.0};
  gpa_only.run_exact = false;
  const SolveResult gpa = Portfolio(gpa_only, 1).solve(problem);

  PortfolioOptions exact_only = deterministic_portfolio(400'000);
  exact_only.gpa_t_max.clear();
  const SolveResult exact = Portfolio(exact_only, 1).solve(problem);

  const SolveResult full =
      Portfolio(deterministic_portfolio(400'000), 1).solve(problem);
  ASSERT_TRUE(full.is_ok());
  ASSERT_TRUE(gpa.is_ok());
  ASSERT_TRUE(exact.is_ok());
  EXPECT_LE(full.goal, std::min(gpa.goal, exact.goal) + 1e-9);
  EXPECT_FALSE(full.winner.empty());
}

TEST(Portfolio, ReportsProvenancePerLane) {
  const SolveResult r =
      Portfolio(deterministic_portfolio(100'000), 1)
          .solve(test::tiny_problem());
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.lanes.size(), 4u);  // 3 GP+A deviations + exact
  EXPECT_EQ(r.lanes[0].strategy, "gpa(T=0.00)");
  EXPECT_EQ(r.lanes[3].strategy, "exact");
  // The winner's lane stats match the headline numbers.
  bool found = false;
  for (const StrategyOutcome& lane : r.lanes) {
    if (lane.strategy == r.winner) {
      found = true;
      EXPECT_DOUBLE_EQ(lane.goal, r.goal);
      EXPECT_DOUBLE_EQ(lane.ii, r.ii);
    }
  }
  EXPECT_TRUE(found);
  // The returned allocation is self-contained and scores the same goal.
  ASSERT_TRUE(r.allocation.has_value());
  EXPECT_NEAR(r.allocation->ii(), r.ii, 1e-12);
  // Exact completed on this tiny instance, so the result is proved.
  EXPECT_TRUE(r.proved_optimal);
}

TEST(Portfolio, ParallelLanesMatchSequentialLanes) {
  // With node-only budgets the winner is chosen by (goal, lane index),
  // never completion order → racing lanes must not change the answer.
  const core::Problem problem = test::tiny_problem();
  const SolveResult seq =
      Portfolio(deterministic_portfolio(100'000), 1).solve(problem);
  const SolveResult par =
      Portfolio(deterministic_portfolio(100'000), 4).solve(problem);
  ASSERT_TRUE(seq.is_ok());
  ASSERT_TRUE(par.is_ok());
  EXPECT_EQ(seq.winner, par.winner);
  EXPECT_EQ(seq.goal, par.goal);
  EXPECT_EQ(seq.ii, par.ii);
  EXPECT_EQ(seq.phi, par.phi);
}

TEST(Portfolio, ZeroLanesIsInvalidNotInfeasible) {
  PortfolioOptions o;
  o.gpa_t_max.clear();
  o.run_exact = false;
  o.run_naive = false;
  const SolveResult r = Portfolio(o, 1).solve(test::tiny_problem());
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status.code(), Code::kInvalid);
}

TEST(Portfolio, InfeasibleProblemReportsInfeasible) {
  core::Problem problem = test::tiny_problem();
  // One CU of kernel 'a' needs 10 % BRAM; a 5 % cap fits nothing.
  problem.resource_fraction = 0.05;
  const SolveResult r =
      Portfolio(deterministic_portfolio(100'000), 1).solve(problem);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status.code(), Code::kInfeasible);
  EXPECT_FALSE(r.allocation.has_value());
}

TEST(Portfolio, HeuristicOnlyPortfolioNeverClaimsInfeasibilityProof) {
  // Regression: with every configured lane heuristic (GP+A), unanimous
  // kInfeasible used to be promoted to the aggregate kInfeasible — a
  // proof-grade claim no heuristic lane can back. Two kernels at 60 %
  // of one FPGA each fit alone (validate passes) but can never share
  // the device, so every GP+A lane reports infeasibility.
  core::Problem problem;
  problem.app.name = "overcommitted";
  problem.app.kernels = {test::make_kernel("a", 10.0, 60.0, 10.0, 5.0),
                         test::make_kernel("b", 10.0, 60.0, 10.0, 5.0)};
  problem.platform = core::Platform{"1fpga", 1};
  PortfolioOptions o;
  o.run_exact = false;
  o.run_naive = false;
  const SolveResult r = Portfolio(o, 1).solve(problem);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status.code(), Code::kLimit);
  for (const StrategyOutcome& lane : r.lanes) {
    EXPECT_EQ(lane.status.code(), Code::kInfeasible);
  }

  // The same instance with an exact lane *does* earn the proof.
  o.run_exact = true;
  const SolveResult proved = Portfolio(o, 1).solve(problem);
  EXPECT_EQ(proved.status.code(), Code::kInfeasible);
}

TEST(Portfolio, DeadlineStopsExactSolver) {
  // A 17-kernel × 8-FPGA exact search runs for minutes unbudgeted; a
  // 50 ms shared deadline must cut it off quickly, keeping any incumbent.
  core::Problem problem = hls::paper::case_vgg_8fpga();
  problem.resource_fraction = 0.7;
  PortfolioOptions o;
  o.gpa_t_max.clear();
  o.run_exact = true;
  o.max_nodes = std::numeric_limits<std::int64_t>::max() / 2;
  o.max_seconds = 0.05;
  const auto t0 = std::chrono::steady_clock::now();
  const SolveResult r = Portfolio(o, 1).solve(problem);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 10.0);  // generous: deadline is polled per packing
  EXPECT_FALSE(r.proved_optimal);
}

TEST(BatchRunner, ResultsAlignWithInputOrder) {
  std::vector<core::Problem> grid;
  for (double rc : {0.9, 0.6, 0.8, 0.7}) {
    core::Problem p = test::tiny_problem();
    p.resource_fraction = rc;
    grid.push_back(p);
  }
  BatchOptions batch;
  batch.num_threads = 3;
  batch.portfolio = deterministic_portfolio(50'000);
  const std::vector<SolveResult> results =
      BatchRunner(batch).solve_all(grid);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(results[i].problem->resource_fraction,
              grid[i].resource_fraction);
  }
}

TEST(BatchRunner, BitForBitIdenticalAcrossThreadCounts) {
  const std::vector<core::Problem> grid = random_grid(16, 1234);

  auto run = [&grid](int threads) {
    BatchOptions batch;
    batch.num_threads = threads;
    batch.portfolio = deterministic_portfolio(50'000);
    return BatchRunner(batch).solve_all(grid);
  };
  const std::vector<SolveResult> one = run(1);
  const std::vector<SolveResult> four = run(4);

  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(one[i].is_ok(), four[i].is_ok());
    EXPECT_EQ(one[i].status.code(), four[i].status.code());
    EXPECT_EQ(one[i].winner, four[i].winner);
    // Bit-for-bit: identical lane execution order per instance makes the
    // floating-point results exactly equal, not merely close.
    EXPECT_EQ(one[i].goal, four[i].goal);
    EXPECT_EQ(one[i].ii, four[i].ii);
    EXPECT_EQ(one[i].phi, four[i].phi);
    EXPECT_EQ(one[i].nodes, four[i].nodes);
    ASSERT_EQ(one[i].lanes.size(), four[i].lanes.size());
    for (std::size_t l = 0; l < one[i].lanes.size(); ++l) {
      EXPECT_EQ(one[i].lanes[l].strategy, four[i].lanes[l].strategy);
      EXPECT_EQ(one[i].lanes[l].goal, four[i].lanes[l].goal);
      EXPECT_EQ(one[i].lanes[l].proved_optimal,
                four[i].lanes[l].proved_optimal);
    }
    if (!one[i].is_ok()) continue;
    const core::Allocation& a = *one[i].allocation;
    const core::Allocation& b = *four[i].allocation;
    ASSERT_EQ(a.num_kernels(), b.num_kernels());
    for (std::size_t k = 0; k < a.num_kernels(); ++k) {
      for (int f = 0; f < a.num_fpgas(); ++f) {
        EXPECT_EQ(a.cu(k, f), b.cu(k, f));
      }
    }
  }
}

TEST(BatchRunner, FourThreadsFasterThanOneOnMulticore) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs ≥ 4 hardware threads for a meaningful timing";
  }
  // 16 budget-capped exact solves on the paper's VGG case (the Alex
  // cases prove optimality in microseconds — too light to time): coarse,
  // CPU-bound, independent — the shape BatchRunner parallelizes.
  std::vector<core::Problem> grid;
  for (int i = 0; i < 16; ++i) {
    core::Problem p = hls::paper::case_vgg_8fpga();
    p.resource_fraction = 0.55 + 0.015 * i;
    grid.push_back(std::move(p));
  }
  auto time_run = [&grid](int threads) {
    BatchOptions batch;
    batch.num_threads = threads;
    batch.portfolio = deterministic_portfolio(400'000);
    const auto t0 = std::chrono::steady_clock::now();
    (void)BatchRunner(batch).solve_all(grid);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  const double one = time_run(1);
  const double four = time_run(4);
  EXPECT_LT(four, one / 1.1)
      << "1 thread: " << one << " s, 4 threads: " << four << " s";
}

TEST(BatchRunner, SharedCacheDoesNotChangeResults) {
  // The relaxation cache is a pure memoization: enabled or disabled,
  // 1 thread or 4, every result must be bit-for-bit identical.
  const std::vector<core::Problem> grid = random_grid(12, 99);

  auto run = [&grid](int threads, bool share) {
    BatchOptions batch;
    batch.num_threads = threads;
    batch.share_relaxations = share;
    batch.portfolio = deterministic_portfolio(50'000);
    return BatchRunner(batch).solve_all(grid);
  };
  const std::vector<SolveResult> cold = run(1, false);
  const std::vector<SolveResult> cached_one = run(1, true);
  const std::vector<SolveResult> cached_four = run(4, true);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    for (const auto* other : {&cached_one, &cached_four}) {
      EXPECT_EQ(cold[i].status.code(), (*other)[i].status.code());
      EXPECT_EQ(cold[i].winner, (*other)[i].winner);
      EXPECT_EQ(cold[i].goal, (*other)[i].goal);
      EXPECT_EQ(cold[i].ii, (*other)[i].ii);
      EXPECT_EQ(cold[i].phi, (*other)[i].phi);
    }
  }
}

TEST(BatchRunner, ExternalCacheIsPopulatedAndReused) {
  RelaxationCache cache;
  BatchOptions batch;
  batch.num_threads = 2;
  batch.relax_cache = &cache;
  batch.portfolio = deterministic_portfolio(50'000);

  const std::vector<core::Problem> grid = random_grid(4, 31);
  const std::vector<SolveResult> first = BatchRunner(batch).solve_all(grid);
  const auto after_first = cache.stats();
  EXPECT_GT(after_first.entries, 0u);
  // Three GP+A lanes per instance walk identical trees → intra-batch hits.
  EXPECT_GT(after_first.hits, 0u);

  // A second batch over the same grid is served from the cache: no new
  // entries, identical results.
  const std::vector<SolveResult> second = BatchRunner(batch).solve_all(grid);
  EXPECT_EQ(cache.stats().entries, after_first.entries);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(first[i].goal, second[i].goal);
    EXPECT_EQ(first[i].winner, second[i].winner);
  }
}

TEST(RuntimeSweep, GpaPointsCarryHeuristicProvenance) {
  // GP+A completion is no optimality proof: such points must not be
  // labeled proved_optimal (they were before this was fixed).
  core::Problem problem = test::tiny_problem();
  alloc::SweepConfig config;
  config.constraints = alloc::constraint_range(0.70, 0.80, 0.05);
  SweepOptions options;
  options.num_threads = 2;
  options.config = config;
  const alloc::SweepSeries gpa =
      run_sweep(problem, alloc::Method::kGpa, options);
  for (const alloc::SweepPoint& pt : gpa.points) {
    EXPECT_FALSE(pt.proved_optimal);
  }
  // Exact methods keep their real proof flag (node budget is generous
  // enough for the tiny instance to complete).
  config.exact.max_nodes = 1'000'000;
  options.config = config;
  const alloc::SweepSeries exact =
      run_sweep(problem, alloc::Method::kMinlpG, options);
  for (const alloc::SweepPoint& pt : exact.points) {
    if (pt.feasible) EXPECT_TRUE(pt.proved_optimal);
  }
}

TEST(BatchRunner, GroupedBatchedRootsCountedAndDeterministic) {
  // A design-space sweep shape: one structure (same kernels, same
  // platform), coefficients varying per instance — exactly what
  // batch_structural_groups groups into one lock-step batched root
  // solve. The counters prove the batched path actually ran (no silent
  // scalar fallback), misgroupings stay zero, and results are bitwise
  // identical across thread counts (group formation happens in input
  // order before any worker runs).
  std::vector<core::Problem> grid;
  for (int i = 0; i < 6; ++i) {
    core::Problem p = test::tiny_problem();
    for (core::Kernel& k : p.app.kernels) {
      k.wcet_ms *= 1.0 + 0.05 * static_cast<double>(i);
    }
    grid.push_back(p);
  }

  auto run = [&grid](int threads) {
    BatchOptions batch;
    batch.num_threads = threads;
    batch.portfolio = deterministic_portfolio(50'000);
    batch.portfolio.gpa.use_interior_point = true;
    return BatchRunner(batch).solve_all(grid);
  };

  const std::int64_t solves0 = gp::total_batched_solves();
  const std::int64_t lanes0 = gp::total_batched_lanes();
  const std::int64_t misgroup0 = gp::total_batched_misgroupings();

  const std::vector<SolveResult> one = run(1);
  EXPECT_GT(gp::total_batched_solves(), solves0);
  EXPECT_GE(gp::total_batched_lanes(),
            lanes0 + static_cast<std::int64_t>(grid.size()));

  const std::vector<SolveResult> four = run(4);
  EXPECT_EQ(gp::total_batched_misgroupings(), misgroup0);

  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(one[i].is_ok(), four[i].is_ok());
    EXPECT_EQ(one[i].winner, four[i].winner);
    EXPECT_EQ(one[i].goal, four[i].goal);  // bitwise
    EXPECT_EQ(one[i].ii, four[i].ii);
    EXPECT_EQ(one[i].phi, four[i].phi);
  }
}

TEST(RuntimeSweep, MatchesSingleThreadedAllocSweep) {
  // The parallel sweep is a drop-in for alloc::run_sweep: same series,
  // same points, any thread count.
  core::Problem problem = hls::paper::case_alex16_2fpga();
  alloc::SweepConfig config;
  config.constraints = alloc::constraint_range(0.60, 0.80, 0.05);
  config.exact.max_nodes = 100'000;
  config.exact.max_seconds = 3600.0;

  for (alloc::Method method :
       {alloc::Method::kGpa, alloc::Method::kMinlp, alloc::Method::kMinlpG}) {
    SCOPED_TRACE(alloc::method_name(method));
    const alloc::SweepSeries reference =
        alloc::run_sweep(problem, method, config);
    SweepOptions options;
    options.num_threads = 4;
    options.config = config;
    const alloc::SweepSeries parallel =
        run_sweep(problem, method, options);
    ASSERT_EQ(parallel.points.size(), reference.points.size());
    for (std::size_t i = 0; i < reference.points.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(parallel.points[i].feasible, reference.points[i].feasible);
      EXPECT_EQ(parallel.points[i].proved_optimal,
                reference.points[i].proved_optimal);
      EXPECT_EQ(parallel.points[i].ii, reference.points[i].ii);
      EXPECT_EQ(parallel.points[i].phi, reference.points[i].phi);
      EXPECT_EQ(parallel.points[i].goal, reference.points[i].goal);
      EXPECT_EQ(parallel.points[i].avg_utilization,
                reference.points[i].avg_utilization);
    }
  }
}

}  // namespace
}  // namespace mfa::runtime
