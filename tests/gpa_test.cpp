#include <random>

#include <gtest/gtest.h>

#include "alloc/gpa.hpp"
#include "hls/paper.hpp"
#include "solver/exact.hpp"
#include "testutil.hpp"

namespace mfa::alloc {
namespace {

using core::Problem;
using test::tiny_problem;

TEST(GpaSolver, EndToEndOnTiny) {
  Problem p = tiny_problem();
  auto r = GpaSolver().solve(p);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const GpaResult& g = r.value();
  EXPECT_TRUE(g.allocation.feasible());
  // Stage chain is consistent: relaxation ≤ discretized ≤ realized II
  // (drops can only raise the realized II).
  EXPECT_LE(g.relaxed_ii, g.discrete_ii + 1e-9);
  EXPECT_LE(g.discrete_ii, g.allocation.ii() + 1e-9);
  EXPECT_EQ(g.totals.size(), p.num_kernels());
  EXPECT_GE(g.seconds_total(), 0.0);
}

TEST(GpaSolver, InteriorPointPathAgreesWithBisectionPath) {
  Problem p = tiny_problem();
  GpaOptions ip;
  ip.use_interior_point = true;
  auto a = GpaSolver().solve(p);
  auto b = GpaSolver(ip).solve(p);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NEAR(a.value().relaxed_ii, b.value().relaxed_ii,
              1e-3 * a.value().relaxed_ii);
  EXPECT_EQ(a.value().totals, b.value().totals);
}

TEST(GpaSolver, PropagatesInvalidProblem) {
  Problem p = tiny_problem();
  p.app.kernels.clear();
  auto r = GpaSolver().solve(p);
  EXPECT_EQ(r.status().code(), Code::kInvalid);
}

TEST(GpaSolver, PropagatesInfeasibility) {
  Problem p = tiny_problem();
  p.app.kernels[0].res[core::Resource::kDsp] = 95.0;  // cap 80
  auto r = GpaSolver().solve(p);
  EXPECT_EQ(r.status().code(), Code::kInfeasible);
}

TEST(GpaSolver, NeverBeatsExactOptimum) {
  // The heuristic can only be ≥ the exact β=0 optimum on II.
  for (double rc : {0.6, 0.75, 0.9}) {
    Problem p = hls::paper::case_alex16_2fpga();
    p.resource_fraction = rc;
    p.beta = 0.0;
    auto heuristic = GpaSolver().solve(p);
    auto exact = solver::ExactSolver().solve(p);
    ASSERT_TRUE(heuristic.is_ok());
    ASSERT_TRUE(exact.is_ok());
    ASSERT_TRUE(exact.value().proved_optimal);
    EXPECT_GE(heuristic.value().allocation.ii(),
              exact.value().ii * (1.0 - 1e-9))
        << "rc=" << rc;
  }
}

TEST(GpaSolver, TracksExactWithinPaperMargins) {
  // §4: GP+A "tracks well MINLP and in particular it catches the
  // extremes"; the worst divergence the paper reports is ~25 %.
  Problem p = hls::paper::case_alex16_2fpga();
  p.resource_fraction = 0.85;
  auto heuristic = GpaSolver().solve(p);
  auto exact = solver::ExactSolver().solve(p);
  ASSERT_TRUE(heuristic.is_ok());
  ASSERT_TRUE(exact.is_ok());
  EXPECT_LE(heuristic.value().allocation.ii(),
            exact.value().ii * 1.35);
}

TEST(GpaSolver, PaperCasesSolveFast) {
  // §4: GP+A runs in seconds (0.78–4.4 s on 2011 hardware); even our
  // simulated pipeline must stay well under a second per case.
  for (Problem p : {hls::paper::case_alex16_2fpga(),
                    hls::paper::case_alex32_4fpga(),
                    hls::paper::case_vgg_8fpga()}) {
    p.resource_fraction = 0.7;
    auto r = GpaSolver().solve(p);
    ASSERT_TRUE(r.is_ok()) << p.app.name;
    EXPECT_LT(r.value().seconds_total(), 1.0) << p.app.name;
  }
}

/// Property: GP+A produces a feasible allocation (or a clean status) on
/// random instances, and never reports II below the relaxation bound.
class RandomGpa : public ::testing::TestWithParam<int> {};

TEST_P(RandomGpa, FeasibleAndBounded) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 15101u);
  Problem p = test::random_problem(rng);
  auto r = GpaSolver().solve(p);
  if (!r.is_ok()) {
    EXPECT_NE(r.status().code(), Code::kOk);
    return;
  }
  EXPECT_TRUE(r.value().allocation.feasible());
  EXPECT_GE(r.value().allocation.ii(), r.value().relaxed_ii - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGpa, ::testing::Range(1, 31));

}  // namespace
}  // namespace mfa::alloc
