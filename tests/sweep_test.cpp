#include <gtest/gtest.h>

#include "alloc/sweep.hpp"
#include "hls/paper.hpp"
#include "testutil.hpp"

namespace mfa::alloc {
namespace {

TEST(ConstraintRange, InclusiveStepping) {
  const std::vector<double> r = constraint_range(0.55, 0.85, 0.10);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_NEAR(r.front(), 0.55, 1e-12);
  EXPECT_NEAR(r.back(), 0.85, 1e-12);
}

TEST(MethodName, StableLabels) {
  EXPECT_STREQ(method_name(Method::kGpa), "GP+A");
  EXPECT_STREQ(method_name(Method::kMinlp), "MINLP");
  EXPECT_STREQ(method_name(Method::kMinlpG), "MINLP+G");
}

TEST(Sweep, GpaSeriesOnTinyProblem) {
  SweepConfig cfg;
  cfg.constraints = constraint_range(0.6, 1.0, 0.2);
  SweepSeries s = run_sweep(test::tiny_problem(), Method::kGpa, cfg);
  ASSERT_EQ(s.points.size(), 3u);
  for (const SweepPoint& pt : s.points) {
    EXPECT_TRUE(pt.feasible);
    EXPECT_GT(pt.ii, 0.0);
    EXPECT_GT(pt.avg_utilization, 0.0);
  }
}

TEST(Sweep, MinlpForcesBetaZero) {
  // kMinlp must ignore the problem's spreading weight: its goal is pure
  // II at each point.
  core::Problem p = test::tiny_problem();
  p.beta = 10.0;
  SweepConfig cfg;
  cfg.constraints = {0.8};
  SweepSeries s = run_sweep(p, Method::kMinlp, cfg);
  ASSERT_EQ(s.points.size(), 1u);
  ASSERT_TRUE(s.points[0].feasible);
  EXPECT_NEAR(s.points[0].goal, s.points[0].ii, 1e-9);
}

TEST(Sweep, InfeasiblePointsAreMarked) {
  core::Problem p = test::tiny_problem();
  SweepConfig cfg;
  // 10 % of an FPGA cannot host kernel a (DSP 20 %).
  cfg.constraints = {0.10, 0.90};
  SweepSeries s = run_sweep(p, Method::kMinlpG, cfg);
  ASSERT_EQ(s.points.size(), 2u);
  EXPECT_FALSE(s.points[0].feasible);
  EXPECT_TRUE(s.points[1].feasible);
}

TEST(Sweep, ExactIiWeaklyBelowGpaOnPaperCase) {
  // The Fig. 3 relationship at each common feasible point.
  core::Problem p = hls::paper::case_alex16_2fpga();
  SweepConfig cfg;
  cfg.constraints = constraint_range(0.60, 0.80, 0.10);
  SweepSeries gpa = run_sweep(p, Method::kGpa, cfg);
  SweepSeries minlp = run_sweep(p, Method::kMinlp, cfg);
  for (std::size_t i = 0; i < cfg.constraints.size(); ++i) {
    if (!gpa.points[i].feasible || !minlp.points[i].feasible) continue;
    EXPECT_GE(gpa.points[i].ii, minlp.points[i].ii * (1.0 - 1e-9))
        << "at constraint " << cfg.constraints[i];
  }
}

}  // namespace
}  // namespace mfa::alloc
