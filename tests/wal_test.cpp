// WAL + crash-recovery coverage: log/snapshot round-trips, torn-tail
// tolerance, corruption detection, and the headline guarantee — a
// server recovered from its WAL (including after a real SIGKILL) is
// byte-identical to one that never crashed.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "scenario/trace.hpp"
#include "service/alloc_server.hpp"
#include "service/wal.hpp"

namespace mfa::service {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("mfa_wal_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

scenario::Trace small_trace(int events, std::uint64_t seed = 20190702) {
  scenario::TraceSpec spec;
  spec.num_events = events;
  spec.num_fpgas = 3;
  spec.max_live_pipelines = 4;
  spec.max_kernels = 3;
  return scenario::generate_trace(spec, seed);
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// The deterministic solve outputs of an outcome (cache counters are
/// excluded on purpose: a snapshot-spliced recovery rebuilds the caches
/// from the tail only, which is transparent to results but not to
/// hit/miss counts).
void expect_solve_eq(const EventOutcome& a, const EventOutcome& b) {
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.solve_status.code(), b.solve_status.code());
  EXPECT_EQ(a.active_pipelines, b.active_pipelines);
  EXPECT_EQ(a.solve.warm_started, b.solve.warm_started);
  EXPECT_DOUBLE_EQ(a.solve.ii, b.solve.ii);
  EXPECT_DOUBLE_EQ(a.solve.phi, b.solve.phi);
  EXPECT_DOUBLE_EQ(a.solve.goal, b.solve.goal);
  EXPECT_EQ(a.solve.totals, b.solve.totals);
}

std::string incumbent_json(const AllocServer& server) {
  const std::optional<runtime::SolveResult> inc = server.incumbent();
  if (!inc.has_value() || !inc->allocation.has_value()) return "";
  return io::to_json(*inc->allocation).dump() + "|" + inc->winner;
}

TEST(Wal, AppendLoadRoundTrip) {
  const TempDir dir("roundtrip");
  const scenario::Trace trace = small_trace(6);
  auto wal = Wal::create(dir.path, trace.platform);
  ASSERT_TRUE(wal.is_ok()) << wal.status().to_string();
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    ASSERT_TRUE(wal.value().append(i, trace.events[i]).is_ok());
  }

  auto recovery = Wal::load(dir.path);
  ASSERT_TRUE(recovery.is_ok()) << recovery.status().to_string();
  EXPECT_EQ(recovery.value().initial_platform.num_fpgas,
            trace.platform.num_fpgas);
  EXPECT_FALSE(recovery.value().snapshot.has_value());
  EXPECT_EQ(recovery.value().next_sequence, trace.events.size());
  ASSERT_EQ(recovery.value().tail.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const WalRecord& record = recovery.value().tail[i];
    EXPECT_EQ(record.sequence, i);
    EXPECT_EQ(record.event.type, trace.events[i].type);
    EXPECT_EQ(io::to_json(record.event).dump(),
              io::to_json(trace.events[i]).dump());
  }
}

TEST(Wal, TornTrailingRecordIsDropped) {
  const TempDir dir("torn");
  const scenario::Trace trace = small_trace(4);
  {
    auto wal = Wal::create(dir.path, trace.platform);
    ASSERT_TRUE(wal.is_ok());
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      ASSERT_TRUE(wal.value().append(i, trace.events[i]).is_ok());
    }
  }
  // Simulate a crash mid-append: chop the last record in half (no
  // trailing newline).
  const std::string log_path = dir.path + "/wal.log";
  std::string bytes = read_all(log_path);
  ASSERT_GT(bytes.size(), 20u);
  bytes.resize(bytes.size() - 17);
  {
    std::ofstream out(log_path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  auto recovery = Wal::load(dir.path);
  ASSERT_TRUE(recovery.is_ok()) << recovery.status().to_string();
  EXPECT_EQ(recovery.value().tail.size(), trace.events.size() - 1);
  EXPECT_EQ(recovery.value().next_sequence, trace.events.size() - 1);
}

TEST(Wal, CorruptMiddleRecordIsRejected) {
  const TempDir dir("corrupt");
  const scenario::Trace trace = small_trace(4);
  {
    auto wal = Wal::create(dir.path, trace.platform);
    ASSERT_TRUE(wal.is_ok());
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      ASSERT_TRUE(wal.value().append(i, trace.events[i]).is_ok());
    }
  }
  const std::string log_path = dir.path + "/wal.log";
  std::string bytes = read_all(log_path);
  const std::size_t second_line = bytes.find('\n', bytes.find('\n') + 1);
  ASSERT_NE(second_line, std::string::npos);
  bytes.insert(second_line + 1, "this is not json\n");
  {
    std::ofstream out(log_path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  auto recovery = Wal::load(dir.path);
  EXPECT_FALSE(recovery.is_ok());
}

TEST(Wal, LoadMissingDirectoryFails) {
  auto recovery = Wal::load("/nonexistent/mfa/wal/dir");
  EXPECT_FALSE(recovery.is_ok());
}

TEST(Wal, SnapshotSplicesTheTail) {
  const TempDir dir("snapshot");
  const scenario::Trace trace = small_trace(10);
  ServerOptions options;
  options.wal_dir = dir.path;
  options.snapshot_every = 4;
  {
    auto server = AllocServer::open(trace.platform, options);
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    for (const Event& event : trace.events) {
      server.value()->apply(event);
    }
    EXPECT_GT(server.value()->stats().snapshots, 0u);
    server.value()->stop();
  }
  auto recovery = Wal::load(dir.path);
  ASSERT_TRUE(recovery.is_ok()) << recovery.status().to_string();
  ASSERT_TRUE(recovery.value().snapshot.has_value());
  const WalSnapshot& snapshot = *recovery.value().snapshot;
  EXPECT_EQ(snapshot.sequence % 4, 0u);
  EXPECT_GT(snapshot.sequence, 0u);
  // The tail starts at the snapshot point, not at zero.
  ASSERT_FALSE(recovery.value().tail.empty());
  EXPECT_EQ(recovery.value().tail.front().sequence, snapshot.sequence);
  EXPECT_EQ(recovery.value().next_sequence, trace.events.size());

  // A server recovered through the snapshot splice matches the
  // uninterrupted run's incumbent.
  ServerOptions plain;
  AllocServer uninterrupted(trace.platform, plain);
  for (const Event& event : trace.events) uninterrupted.apply(event);
  uninterrupted.stop();

  ServerOptions recover_options = options;
  auto recovered = AllocServer::recover(recover_options);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(incumbent_json(*recovered.value()),
            incumbent_json(uninterrupted));
  EXPECT_EQ(recovered.value()->active_pipelines(),
            uninterrupted.active_pipelines());
  EXPECT_EQ(recovered.value()->stats().sequence, trace.events.size());
  recovered.value()->stop();
}

TEST(Wal, RecoveredServerMatchesUninterruptedRun) {
  const TempDir dir_full("full");
  const TempDir dir_crash("crash");
  const scenario::Trace trace = small_trace(12);
  const std::size_t crash_at = 7;

  ServerOptions options;  // snapshot_every default: no snapshot in 12
  options.wal_dir = dir_full.path;
  std::vector<EventOutcome> full_log;
  std::string full_incumbent;
  {
    auto server = AllocServer::open(trace.platform, options);
    ASSERT_TRUE(server.is_ok());
    for (const Event& event : trace.events) {
      full_log.push_back(server.value()->apply(event));
    }
    full_incumbent = incumbent_json(*server.value());
    server.value()->stop();
  }

  // "Crash" after crash_at events (clean process, dirty server state is
  // simply abandoned along with the object), then recover and finish.
  options.wal_dir = dir_crash.path;
  {
    auto server = AllocServer::open(trace.platform, options);
    ASSERT_TRUE(server.is_ok());
    for (std::size_t i = 0; i < crash_at; ++i) {
      server.value()->apply(trace.events[i]);
    }
    server.value()->stop();
  }
  auto recovered = AllocServer::recover(options);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  std::vector<EventOutcome> tail_log;
  for (std::size_t i = crash_at; i < trace.events.size(); ++i) {
    tail_log.push_back(recovered.value()->apply(trace.events[i]));
  }
  EXPECT_EQ(incumbent_json(*recovered.value()), full_incumbent);
  for (std::size_t i = 0; i < tail_log.size(); ++i) {
    SCOPED_TRACE("post-recovery event " + std::to_string(i));
    expect_solve_eq(tail_log[i], full_log[crash_at + i]);
  }
  recovered.value()->stop();

  // Both runs logged the same history, byte for byte.
  EXPECT_EQ(read_all(dir_full.path + "/wal.log"),
            read_all(dir_crash.path + "/wal.log"));
}

TEST(Wal, StabilityDiffsSurviveRecovery) {
  // The occupancy ledger is rebuilt inside resolve_workload, so a
  // snapshot-spliced recovery under migration budgets must reproduce
  // the uninterrupted run's diffs (and repack decisions) exactly.
  const TempDir dir("stab");
  const scenario::Trace trace = small_trace(14);
  const std::size_t crash_at = 9;

  ServerOptions options;
  options.snapshot_every = 4;  // force the snapshot splice path
  options.max_moves = 2;
  options.max_disturbed = 1;
  std::vector<EventOutcome> full_log;
  std::string full_incumbent;
  {
    AllocServer server(trace.platform, options);
    for (const Event& event : trace.events) {
      full_log.push_back(server.apply(event));
    }
    full_incumbent = incumbent_json(server);
    server.stop();
  }

  options.wal_dir = dir.path;
  {
    auto server = AllocServer::open(trace.platform, options);
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    for (std::size_t i = 0; i < crash_at; ++i) {
      server.value()->apply(trace.events[i]);
    }
    server.value()->stop();
  }
  auto recovered = AllocServer::recover(options);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  // The rebuilt ledger matches the live one: same placements, same CUs.
  for (std::size_t i = crash_at; i < trace.events.size(); ++i) {
    SCOPED_TRACE("post-recovery event " + std::to_string(i));
    const EventOutcome replayed =
        recovered.value()->apply(trace.events[i]);
    const EventOutcome& expected = full_log[i];
    expect_solve_eq(replayed, expected);
    EXPECT_EQ(replayed.diff.computed, expected.diff.computed);
    EXPECT_EQ(replayed.diff.cus_moved, expected.diff.cus_moved);
    EXPECT_EQ(replayed.diff.pipelines_disturbed,
              expected.diff.pipelines_disturbed);
    EXPECT_DOUBLE_EQ(replayed.diff.goal_regret, expected.diff.goal_regret);
    EXPECT_EQ(replayed.diff.stability_applied,
              expected.diff.stability_applied);
    EXPECT_EQ(replayed.diff.budget_exceeded, expected.diff.budget_exceeded);
  }
  EXPECT_EQ(incumbent_json(*recovered.value()), full_incumbent);
  recovered.value()->stop();
}

TEST(Wal, KillNineRecoveryIsByteIdentical) {
  const TempDir dir_full("k9full");
  const TempDir dir_crash("k9crash");
  const scenario::Trace trace = small_trace(10);
  const std::size_t crash_at = 6;

  ServerOptions options;
  options.wal_dir = dir_full.path;
  std::vector<EventOutcome> full_log;
  std::string full_incumbent;
  {
    auto server = AllocServer::open(trace.platform, options);
    ASSERT_TRUE(server.is_ok());
    for (const Event& event : trace.events) {
      full_log.push_back(server.value()->apply(event));
    }
    full_incumbent = incumbent_json(*server.value());
    server.value()->stop();
  }

  // Real crash: the child applies crash_at events (each acknowledged,
  // so each fsync'd by append-before-apply) and SIGKILLs itself — no
  // destructors, no flush, exactly a power-cut.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ServerOptions child_options;
    child_options.wal_dir = dir_crash.path;
    auto server = AllocServer::open(trace.platform, child_options);
    if (!server.is_ok()) ::_exit(3);
    for (std::size_t i = 0; i < crash_at; ++i) {
      server.value()->apply(trace.events[i]);
    }
    ::kill(::getpid(), SIGKILL);
    ::_exit(4);  // unreachable
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  ServerOptions recover_options;
  recover_options.wal_dir = dir_crash.path;
  auto recovered = AllocServer::recover(recover_options);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value()->stats().sequence, crash_at);
  std::vector<EventOutcome> tail_log;
  for (std::size_t i = crash_at; i < trace.events.size(); ++i) {
    tail_log.push_back(recovered.value()->apply(trace.events[i]));
  }
  EXPECT_EQ(incumbent_json(*recovered.value()), full_incumbent);
  for (std::size_t i = 0; i < tail_log.size(); ++i) {
    SCOPED_TRACE("post-recovery event " + std::to_string(i));
    expect_solve_eq(tail_log[i], full_log[crash_at + i]);
  }
  recovered.value()->stop();
  EXPECT_EQ(read_all(dir_full.path + "/wal.log"),
            read_all(dir_crash.path + "/wal.log"));
}

TEST(Wal, RecoverWithoutWalDirFails) {
  ServerOptions options;
  auto recovered = AllocServer::recover(options);
  EXPECT_FALSE(recovered.is_ok());
}

}  // namespace
}  // namespace mfa::service
