#include <cmath>

#include <gtest/gtest.h>

#include "gp/expr.hpp"
#include "gp/problem.hpp"
#include "gp/solver.hpp"

namespace mfa::gp {
namespace {

TEST(Monomial, EvalAndAlgebra) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  Monomial m = 2.0 * Monomial::var(x) * Monomial::var(y).pow(-1.0);
  std::vector<double> at{4.0, 2.0};
  EXPECT_DOUBLE_EQ(m.eval(at), 4.0);  // 2·4/2
  EXPECT_DOUBLE_EQ(m.exponent(x), 1.0);
  EXPECT_DOUBLE_EQ(m.exponent(y), -1.0);

  Monomial inv = m.inverse();
  EXPECT_DOUBLE_EQ(inv.eval(at), 0.25);
  // Exponents cancel exactly when multiplied by the inverse.
  Monomial one = m * inv;
  EXPECT_TRUE(one.exponents().empty());
  EXPECT_DOUBLE_EQ(one.coeff(), 1.0);
}

TEST(Posynomial, SumAndScale) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  Posynomial f = Monomial::var(x) + Posynomial(3.0);
  f *= 2.0;
  std::vector<double> at{5.0};
  EXPECT_DOUBLE_EQ(f.eval(at), 2.0 * 5.0 + 6.0);
  EXPECT_EQ(f.terms().size(), 2u);
  EXPECT_FALSE(f.is_monomial());
}

TEST(LseFunction, ValueMatchesLogOfPosynomial) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  Posynomial f = Monomial::var(x) * Monomial::var(y) + 0.5 * Monomial::var(x);
  LseFunction lse = p.compile(f);
  // y = log(x=2, y=3).
  linalg::Vector at{std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(lse.value(at), std::log(2.0 * 3.0 + 0.5 * 2.0), 1e-12);
}

TEST(LseFunction, GradientMatchesFiniteDifference) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  Posynomial f = Monomial::var(x).pow(2.0) +
                 3.0 * Monomial::var(y).pow(-1.0) * Monomial::var(x);
  LseFunction lse = p.compile(f);

  linalg::Vector at{0.3, -0.2};
  linalg::Vector grad(2);
  linalg::Matrix hess(2, 2);
  lse.add_derivatives(at, 1.0, grad, hess);

  const double h = 1e-6;
  for (std::size_t i = 0; i < 2; ++i) {
    linalg::Vector hi = at;
    linalg::Vector lo = at;
    hi[i] += h;
    lo[i] -= h;
    const double fd = (lse.value(hi) - lse.value(lo)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-6);
  }
}

TEST(LseFunction, HessianMatchesFiniteDifference) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  Posynomial f = Monomial::var(x) + Monomial::var(y) +
                 Monomial::var(x) * Monomial::var(y);
  LseFunction lse = p.compile(f);

  linalg::Vector at{0.1, 0.4};
  linalg::Vector grad(2);
  linalg::Matrix hess(2, 2);
  lse.add_derivatives(at, 1.0, grad, hess);

  const double h = 1e-5;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      linalg::Vector pp = at, pm = at, mp = at, mm = at;
      pp[i] += h;
      pp[j] += h;
      pm[i] += h;
      pm[j] -= h;
      mp[i] -= h;
      mp[j] += h;
      mm[i] -= h;
      mm[j] -= h;
      const double fd = (lse.value(pp) - lse.value(pm) - lse.value(mp) +
                         lse.value(mm)) /
                        (4 * h * h);
      EXPECT_NEAR(hess(i, j), fd, 1e-4);
    }
  }
}

// minimize x + 1/x  →  x* = 1, f* = 2 (unconstrained GP).
TEST(GpSolver, UnconstrainedKnownOptimum) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x) + Monomial::var(x).inverse());
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-5);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
}

// minimize x·y s.t. 1/(x·y) ≤ 1 → optimum x·y = 1.
TEST(GpSolver, ConstrainedProductOptimum) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  p.set_objective(Monomial::var(x) * Monomial::var(y));
  p.add_le1((Monomial::var(x) * Monomial::var(y)).inverse(), "xy >= 1");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  EXPECT_NEAR(sol.x[0] * sol.x[1], 1.0, 1e-6);
  EXPECT_LE(sol.max_violation, 1e-8);
}

// Textbook box GP: maximize volume x·y·z (minimize its inverse) with
// wall area 2(xz + yz) ≤ 10, floor area x·y ≤ 5, aspect bounds
// 0.5 ≤ x/y ≤ 2, 0.5 ≤ z/y... simplified without aspect bounds the
// optimum has xy = 5 and 2(xz+yz) = 10.
TEST(GpSolver, BoxDesign) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  const VarId z = p.add_variable("z");
  p.set_objective(
      (Monomial::var(x) * Monomial::var(y) * Monomial::var(z)).inverse());
  p.add_le1(0.2 * Monomial::var(x) * Monomial::var(z) +
                0.2 * Monomial::var(y) * Monomial::var(z),
            "wall area");
  p.add_le1(0.2 * Monomial::var(x) * Monomial::var(y), "floor area");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  // Both constraints active at the optimum.
  EXPECT_NEAR(sol.x[0] * sol.x[1], 5.0, 1e-4);
  EXPECT_NEAR(2.0 * sol.x[2] * (sol.x[0] + sol.x[1]), 10.0, 1e-3);
  // Symmetric in x and y.
  EXPECT_NEAR(sol.x[0], sol.x[1], 1e-4);
}

TEST(GpSolver, MonomialEqualityLowering) {
  // minimize x with x·y = 4 and y ≤ 2 → y = 2, x = 2.
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  p.set_objective(Monomial::var(x));
  p.add_eq1(0.25 * Monomial::var(x) * Monomial::var(y), "xy = 4");
  p.add_le1(0.5 * Monomial::var(y), "y <= 2");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-4);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-4);
}

TEST(GpSolver, DetectsInfeasible) {
  // x ≤ 1/2 and x ≥ 2 simultaneously.
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x));
  p.add_le1(2.0 * Monomial::var(x), "x <= 1/2");
  p.add_le1(2.0 * Monomial::var(x).inverse(), "x >= 2");
  GpSolution sol = GpSolver().solve(p);
  EXPECT_EQ(sol.status, GpStatus::kInfeasible);
}

TEST(GpSolver, FeasibleStartSkipsPhase1) {
  // x = 1 is strictly feasible for x ≤ 10 — converges immediately.
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x));
  p.add_le1(0.1 * Monomial::var(x), "x <= 10");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok());
  // Objective pushed toward 0; barrier keeps it positive but tiny
  // relative to the cap.
  EXPECT_LT(sol.x[0], 1e-3);
}

TEST(GpSolver, ReportsIterLimitOnStarvedBudget) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  p.set_objective(Monomial::var(x) * Monomial::var(y));
  p.add_le1((Monomial::var(x) * Monomial::var(y)).inverse(), "xy >= 1");
  SolverOptions opts;
  opts.max_outer = 1;
  opts.max_newton = 1;
  GpSolution sol = GpSolver(opts).solve(p);
  EXPECT_NE(sol.status, GpStatus::kOptimal);
}

/// Parameterized: minimize x s.t. c/x ≤ 1 → x* = c, for several c.
class ScalarBoundGp : public ::testing::TestWithParam<double> {};

TEST_P(ScalarBoundGp, OptimumEqualsBound) {
  const double c = GetParam();
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x));
  p.add_le1(c * Monomial::var(x).inverse(), "x >= c");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.x[0], c, c * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, ScalarBoundGp,
                         ::testing::Values(0.01, 0.5, 1.0, 3.0, 42.0,
                                           1000.0));

}  // namespace
}  // namespace mfa::gp
