#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "gp/batched.hpp"
#include "gp/compiled.hpp"
#include "gp/expr.hpp"
#include "gp/problem.hpp"
#include "gp/solver.hpp"

namespace mfa::gp {
namespace {

TEST(Monomial, EvalAndAlgebra) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  Monomial m = 2.0 * Monomial::var(x) * Monomial::var(y).pow(-1.0);
  std::vector<double> at{4.0, 2.0};
  EXPECT_DOUBLE_EQ(m.eval(at), 4.0);  // 2·4/2
  EXPECT_DOUBLE_EQ(m.exponent(x), 1.0);
  EXPECT_DOUBLE_EQ(m.exponent(y), -1.0);

  Monomial inv = m.inverse();
  EXPECT_DOUBLE_EQ(inv.eval(at), 0.25);
  // Exponents cancel exactly when multiplied by the inverse.
  Monomial one = m * inv;
  EXPECT_TRUE(one.exponents().empty());
  EXPECT_DOUBLE_EQ(one.coeff(), 1.0);
}

TEST(Monomial, IntegerExponentFastPathMatchesPow) {
  // e ∈ {1, 2, −1} take the multiply/divide fast path; parity with the
  // generic std::pow route must hold for all of them.
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  const VarId z = p.add_variable("z");
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> point(0.1, 50.0);
  const double exps[] = {1.0, 2.0, -1.0, 0.5, -2.0, 3.0};
  for (double ex : exps) {
    for (double ey : exps) {
      Monomial m = 1.75 * Monomial::var(x).pow(ex) *
                   Monomial::var(y).pow(ey) * Monomial::var(z).pow(-1.0);
      for (int trial = 0; trial < 16; ++trial) {
        std::vector<double> at{point(rng), point(rng), point(rng)};
        const double reference = 1.75 * std::pow(at[0], ex) *
                                 std::pow(at[1], ey) * std::pow(at[2], -1.0);
        EXPECT_NEAR(m.eval(at), reference, 1e-12 * std::fabs(reference))
            << "ex=" << ex << " ey=" << ey;
      }
    }
  }
  // The unit-exponent path is exact, not merely close.
  std::vector<double> at{1.0 / 3.0, 7.0, 1.0};
  EXPECT_DOUBLE_EQ(Monomial::var(x).eval(at), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Monomial::var(y).pow(2.0).eval(at), 49.0);
  EXPECT_DOUBLE_EQ(Monomial::var(x).pow(-1.0).eval(at), 3.0);
}

TEST(Posynomial, SumAndScale) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  Posynomial f = Monomial::var(x) + Posynomial(3.0);
  f *= 2.0;
  std::vector<double> at{5.0};
  EXPECT_DOUBLE_EQ(f.eval(at), 2.0 * 5.0 + 6.0);
  EXPECT_EQ(f.terms().size(), 2u);
  EXPECT_FALSE(f.is_monomial());
}

TEST(LseFunction, ValueMatchesLogOfPosynomial) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  Posynomial f = Monomial::var(x) * Monomial::var(y) + 0.5 * Monomial::var(x);
  LseFunction lse = p.compile(f);
  // y = log(x=2, y=3).
  linalg::Vector at{std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(lse.value(at), std::log(2.0 * 3.0 + 0.5 * 2.0), 1e-12);
}

TEST(LseFunction, GradientMatchesFiniteDifference) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  Posynomial f = Monomial::var(x).pow(2.0) +
                 3.0 * Monomial::var(y).pow(-1.0) * Monomial::var(x);
  LseFunction lse = p.compile(f);

  linalg::Vector at{0.3, -0.2};
  linalg::Vector grad(2);
  linalg::Matrix hess(2, 2);
  lse.add_derivatives(at, 1.0, grad, hess);

  const double h = 1e-6;
  for (std::size_t i = 0; i < 2; ++i) {
    linalg::Vector hi = at;
    linalg::Vector lo = at;
    hi[i] += h;
    lo[i] -= h;
    const double fd = (lse.value(hi) - lse.value(lo)) / (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-6);
  }
}

TEST(LseFunction, HessianMatchesFiniteDifference) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  Posynomial f = Monomial::var(x) + Monomial::var(y) +
                 Monomial::var(x) * Monomial::var(y);
  LseFunction lse = p.compile(f);

  linalg::Vector at{0.1, 0.4};
  linalg::Vector grad(2);
  linalg::Matrix hess(2, 2);
  lse.add_derivatives(at, 1.0, grad, hess);

  const double h = 1e-5;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      linalg::Vector pp = at, pm = at, mp = at, mm = at;
      pp[i] += h;
      pp[j] += h;
      pm[i] += h;
      pm[j] -= h;
      mp[i] -= h;
      mp[j] += h;
      mm[i] -= h;
      mm[j] -= h;
      const double fd = (lse.value(pp) - lse.value(pm) - lse.value(mp) +
                         lse.value(mm)) /
                        (4 * h * h);
      EXPECT_NEAR(hess(i, j), fd, 1e-4);
    }
  }
}

/// Random posynomial over `n` vars: 1–6 terms, exponents drawn from a
/// grid that includes the fast-path values and repeats often enough to
/// exercise hash-consing and duplicate-term merging.
Posynomial random_posynomial(std::mt19937& rng, std::size_t n) {
  std::uniform_int_distribution<int> terms(1, 6);
  std::uniform_int_distribution<int> pick(0, 6);
  std::uniform_real_distribution<double> coeff(0.1, 10.0);
  const double grid[] = {-2.0, -1.0, -0.5, 0.0, 1.0, 2.0, 3.0};
  Posynomial p;
  const int num_terms = terms(rng);
  for (int t = 0; t < num_terms; ++t) {
    Monomial m(coeff(rng));
    for (std::size_t v = 0; v < n; ++v) {
      const double e = grid[pick(rng)];
      if (e != 0.0) m *= Monomial::var(static_cast<VarId>(v)).pow(e);
    }
    p += m;
  }
  return p;
}

TEST(CompiledGp, MatchesLseOnRandomPosynomials) {
  // The flat IR must agree with the interpretive LseFunction path on
  // value, gradient and Hessian across random posynomials and points.
  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> point(-1.5, 1.5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 5);
    GpProblem prob;
    for (std::size_t v = 0; v < n; ++v) {
      prob.add_variable("v" + std::to_string(v));
    }
    const Posynomial p = random_posynomial(rng, n);
    const LseFunction lse = prob.compile(p);
    CompiledGp compiled(n);
    compiled.add(p);

    linalg::Vector y(n);
    for (std::size_t v = 0; v < n; ++v) y[v] = point(rng);

    GpWorkspace ws;
    const double expected = lse.value(y);
    EXPECT_NEAR(compiled.value(0, y, ws), expected,
                1e-9 * (1.0 + std::fabs(expected)));

    linalg::Vector grad_ref(n);
    linalg::Matrix hess_ref(n, n);
    lse.add_derivatives(y, 1.0, grad_ref, hess_ref);
    linalg::Vector grad(n);
    linalg::Matrix hess(n, n);
    const double val = compiled.prepare(0, y, ws);
    compiled.scatter(0, 1.0, 1.0, -1.0, grad, hess, ws);
    EXPECT_NEAR(val, expected, 1e-9 * (1.0 + std::fabs(expected)));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(grad[i], grad_ref[i], 1e-9) << "trial " << trial;
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(hess(i, j), hess_ref(i, j), 1e-9) << "trial " << trial;
      }
    }
  }
}

TEST(CompiledGp, HashConsesRowsAndMergesDuplicateMonomials) {
  GpProblem prob;
  const VarId x = prob.add_variable("x");
  const VarId y = prob.add_variable("y");
  // x·y appears in both constraints and twice in the objective.
  prob.set_objective(2.0 * Monomial::var(x) * Monomial::var(y) +
                     3.0 * Monomial::var(x) * Monomial::var(y));
  prob.add_le1(0.5 * Monomial::var(x) * Monomial::var(y) +
               Monomial::var(x).inverse());
  prob.add_le1(0.25 * Monomial::var(x) * Monomial::var(y));
  CompiledGp compiled = prob.compile();
  EXPECT_EQ(compiled.num_functions(), 3u);
  // Duplicate monomials merged: the objective is a single term 5·x·y.
  EXPECT_EQ(compiled.num_terms(0), 1u);
  // Rows hash-consed: {x·y, 1/x} — two distinct exponent patterns.
  EXPECT_EQ(compiled.num_rows(), 2u);
  // Merged coefficient evaluates as 5·x·y.
  GpWorkspace ws;
  linalg::Vector at{std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(compiled.value(0, at, ws), std::log(5.0 * 2.0 * 3.0), 1e-12);
}

TEST(CompiledGp, SlackAugmentationMatchesDefinition) {
  GpProblem prob;
  const VarId x = prob.add_variable("x");
  prob.set_objective(Monomial::var(x));
  prob.add_le1(2.0 * Monomial::var(x), "x <= 1/2");
  CompiledGp compiled = prob.compile();
  CompiledGp slack = compiled.with_slack();
  ASSERT_EQ(slack.num_vars(), 2u);
  GpWorkspace ws;
  // F₀(y, s) = s;  F₁(y, s) = F₁(y) − s.
  linalg::Vector ys{0.3, 0.7};
  EXPECT_NEAR(slack.value(0, ys, ws), 0.7, 1e-12);
  linalg::Vector y1{0.3};
  EXPECT_NEAR(slack.value(1, ys, ws), compiled.value(1, y1, ws) - 0.7,
              1e-12);
}

/// A problem with the given structure; coefficients vary with `salt`.
GpProblem salted_problem(double salt) {
  GpProblem prob;
  const VarId x = prob.add_variable("x");
  const VarId y = prob.add_variable("y");
  // Duplicate monomials (merged at compile time) and a shared row across
  // functions, so the patch path must replay a non-trivial merge plan.
  prob.set_objective(salt * Monomial::var(x) * Monomial::var(y) +
                     (2.0 * salt) * Monomial::var(x) * Monomial::var(y) +
                     0.5 * Monomial::var(x).inverse());
  prob.add_le1((salt / 3.0) * Monomial::var(x) * Monomial::var(y) +
                   (1.0 / salt) * Monomial::var(y).inverse(),
               "c0");
  prob.add_le1(0.25 * salt * Monomial::var(y), "c1");
  return prob;
}

TEST(CompiledGp, StructuralFingerprintIgnoresCoefficientsOnly) {
  const GpProblem a = salted_problem(1.0);
  const GpProblem b = salted_problem(7.25);
  // Coefficient changes: same structure, problem- and IR-level.
  EXPECT_EQ(a.structural_fingerprint(), b.structural_fingerprint());
  EXPECT_EQ(a.compile().structure_fingerprint(),
            b.compile().structure_fingerprint());

  // A structural change — one more constraint — moves both.
  GpProblem c = salted_problem(1.0);
  c.add_le1(0.5 * Monomial::var(0), "extra");
  EXPECT_NE(a.structural_fingerprint(), c.structural_fingerprint());
  EXPECT_NE(a.compile().structure_fingerprint(),
            c.compile().structure_fingerprint());

  // So does an exponent change with identical shapes (x² instead of x).
  GpProblem d;
  const VarId x = d.add_variable("x");
  const VarId y = d.add_variable("y");
  d.set_objective(Monomial::var(x).pow(2.0) * Monomial::var(y) +
                  2.0 * Monomial::var(x) * Monomial::var(y) +
                  0.5 * Monomial::var(x).inverse());
  d.add_le1((1.0 / 3.0) * Monomial::var(x) * Monomial::var(y) +
                Monomial::var(y).inverse(),
            "c0");
  d.add_le1(0.25 * Monomial::var(y), "c1");
  EXPECT_NE(a.structural_fingerprint(), d.structural_fingerprint());
}

TEST(CompiledModel, PatchedCoefficientsMatchFreshBuildBitwise) {
  const GpProblem donor = salted_problem(3.5);
  const GpProblem target = salted_problem(0.8);
  constexpr double kBox = 46.0;

  // Clone the donor's compiled artifact and patch it to the target.
  const CompiledModel donor_model = CompiledModel::build(donor, kBox);
  CompiledModel patched = donor_model;  // shares structure
  patched.patch_coefficients(target, kBox);
  EXPECT_TRUE(patched.gp().same_structure(donor_model.gp()));

  const CompiledModel fresh = CompiledModel::build(target, kBox);
  ASSERT_EQ(patched.gp().num_functions(), fresh.gp().num_functions());

  // Every function evaluates bit-identically (not merely close) at
  // random points — the determinism contract the model cache rides on.
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> point(-2.0, 2.0);
  GpWorkspace ws_a;
  GpWorkspace ws_b;
  for (int trial = 0; trial < 32; ++trial) {
    linalg::Vector y{point(rng), point(rng)};
    for (std::size_t f = 0; f < fresh.gp().num_functions(); ++f) {
      EXPECT_EQ(patched.gp().value(f, y, ws_a), fresh.gp().value(f, y, ws_b))
          << "f=" << f << " trial=" << trial;
    }
  }

  // The donor's own coefficients are untouched by patching the clone.
  CompiledModel donor_again = CompiledModel::build(donor, kBox);
  GpWorkspace ws_c;
  linalg::Vector y{0.3, -0.4};
  EXPECT_EQ(donor_model.gp().value(0, y, ws_a),
            donor_again.gp().value(0, y, ws_c));
}

TEST(GpSolver, PreparedModelSolveMatchesPlainSolveBitwise) {
  const GpProblem target = salted_problem(1.6);
  SolverOptions opts;
  const GpSolution plain = GpSolver(opts).solve(target);

  // Prepared path, via a structure compiled from *different*
  // coefficients and patched — exactly what a model-cache hit does.
  CompiledModel model = CompiledModel::build(salted_problem(9.0),
                                             opts.variable_box);
  model.patch_coefficients(target, opts.variable_box);
  const GpSolution prepared = GpSolver(opts).solve(target, model);

  ASSERT_EQ(prepared.status, plain.status);
  EXPECT_EQ(prepared.x, plain.x);  // bit-identical primal point
  EXPECT_EQ(prepared.objective, plain.objective);
  EXPECT_EQ(prepared.newton_iterations, plain.newton_iterations);
  EXPECT_EQ(prepared.outer_iterations, plain.outer_iterations);

  // Warm-started flavor too.
  const GpSolution plain_warm = GpSolver(opts).solve(target, plain.x);
  const GpSolution prepared_warm =
      GpSolver(opts).solve(target, model, plain.x);
  ASSERT_EQ(prepared_warm.status, plain_warm.status);
  EXPECT_EQ(prepared_warm.x, plain_warm.x);
  EXPECT_EQ(prepared_warm.newton_iterations, plain_warm.newton_iterations);
}

TEST(CompiledModel, SlackLoweringIsLazyAndCachedPerStructure) {
  // An infeasible start forces phase I; the slack problem must be
  // lowered exactly once per structure, not per solve.
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x));
  p.add_le1(2.0 * Monomial::var(x).inverse(), "x >= 2");
  SolverOptions opts;
  const CompiledModel model = CompiledModel::build(p, opts.variable_box);

  const std::int64_t before = total_slack_lowerings();
  const GpSolution first = GpSolver(opts).solve(p, model);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(total_slack_lowerings() - before, 1);  // phase I ran once

  // Re-solving through the same model (or a clone) reuses the cached
  // slack structure.
  CompiledModel clone = model;
  const GpSolution second = GpSolver(opts).solve(p, clone);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(total_slack_lowerings() - before, 1);
  EXPECT_EQ(second.x, first.x);

  // A strictly feasible warm seed skips phase I — and therefore never
  // pays a slack lowering even on a fresh structure.
  GpProblem q;
  const VarId z = q.add_variable("z");
  q.set_objective(Monomial::var(z));
  q.add_le1(3.0 * Monomial::var(z).inverse(), "z >= 3");
  const CompiledModel qm = CompiledModel::build(q, opts.variable_box);
  const std::int64_t before_q = total_slack_lowerings();
  const GpSolution warm = GpSolver(opts).solve(q, qm, {10.0});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(total_slack_lowerings() - before_q, 0);
}

/// Compiled and legacy kernels must land on the same optimum.
TEST(GpSolver, CompiledMatchesLegacyOnRandomProblems) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 3);
    GpProblem prob;
    for (std::size_t v = 0; v < n; ++v) {
      prob.add_variable("v" + std::to_string(v));
    }
    prob.set_objective(random_posynomial(rng, n));
    // A box-style constraint per variable keeps the instances bounded
    // and feasible: x_v ≤ u with u ∈ [1, 8].
    std::uniform_real_distribution<double> ub(1.0, 8.0);
    for (std::size_t v = 0; v < n; ++v) {
      prob.add_le1((1.0 / ub(rng)) * Monomial::var(static_cast<VarId>(v)));
    }
    SolverOptions compiled_opts;
    compiled_opts.use_compiled_kernel = true;
    SolverOptions legacy_opts;
    legacy_opts.use_compiled_kernel = false;
    const GpSolution a = GpSolver(compiled_opts).solve(prob);
    const GpSolution b = GpSolver(legacy_opts).solve(prob);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (!a.ok()) continue;
    EXPECT_NEAR(a.objective, b.objective,
                1e-6 * (1.0 + std::fabs(b.objective)))
        << "trial " << trial;
  }
}

TEST(GpSolver, WarmStartMatchesColdStart) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  p.set_objective(Monomial::var(x) * Monomial::var(y));
  p.add_le1((Monomial::var(x) * Monomial::var(y)).inverse(), "xy >= 1");
  const GpSolution cold = GpSolver().solve(p);
  ASSERT_TRUE(cold.ok());
  // Seeding with the cold solution (or any positive point) converges to
  // the same optimum.
  const GpSolution warm = GpSolver().solve(p, cold.x);
  ASSERT_TRUE(warm.ok());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-8);
  const GpSolution elsewhere = GpSolver().solve(p, {37.0, 0.004});
  ASSERT_TRUE(elsewhere.ok());
  EXPECT_NEAR(elsewhere.objective, cold.objective, 1e-6);
}

// minimize x + 1/x  →  x* = 1, f* = 2 (unconstrained GP).
TEST(GpSolver, UnconstrainedKnownOptimum) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x) + Monomial::var(x).inverse());
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-5);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
}

// minimize x·y s.t. 1/(x·y) ≤ 1 → optimum x·y = 1.
TEST(GpSolver, ConstrainedProductOptimum) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  p.set_objective(Monomial::var(x) * Monomial::var(y));
  p.add_le1((Monomial::var(x) * Monomial::var(y)).inverse(), "xy >= 1");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  EXPECT_NEAR(sol.x[0] * sol.x[1], 1.0, 1e-6);
  EXPECT_LE(sol.max_violation, 1e-8);
}

// Textbook box GP: maximize volume x·y·z (minimize its inverse) with
// wall area 2(xz + yz) ≤ 10, floor area x·y ≤ 5, aspect bounds
// 0.5 ≤ x/y ≤ 2, 0.5 ≤ z/y... simplified without aspect bounds the
// optimum has xy = 5 and 2(xz+yz) = 10.
TEST(GpSolver, BoxDesign) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  const VarId z = p.add_variable("z");
  p.set_objective(
      (Monomial::var(x) * Monomial::var(y) * Monomial::var(z)).inverse());
  p.add_le1(0.2 * Monomial::var(x) * Monomial::var(z) +
                0.2 * Monomial::var(y) * Monomial::var(z),
            "wall area");
  p.add_le1(0.2 * Monomial::var(x) * Monomial::var(y), "floor area");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  // Both constraints active at the optimum.
  EXPECT_NEAR(sol.x[0] * sol.x[1], 5.0, 1e-4);
  EXPECT_NEAR(2.0 * sol.x[2] * (sol.x[0] + sol.x[1]), 10.0, 1e-3);
  // Symmetric in x and y.
  EXPECT_NEAR(sol.x[0], sol.x[1], 1e-4);
}

TEST(GpSolver, MonomialEqualityLowering) {
  // minimize x with x·y = 4 and y ≤ 2 → y = 2, x = 2.
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  p.set_objective(Monomial::var(x));
  p.add_eq1(0.25 * Monomial::var(x) * Monomial::var(y), "xy = 4");
  p.add_le1(0.5 * Monomial::var(y), "y <= 2");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-4);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-4);
}

TEST(GpSolver, DetectsInfeasible) {
  // x ≤ 1/2 and x ≥ 2 simultaneously.
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x));
  p.add_le1(2.0 * Monomial::var(x), "x <= 1/2");
  p.add_le1(2.0 * Monomial::var(x).inverse(), "x >= 2");
  GpSolution sol = GpSolver().solve(p);
  EXPECT_EQ(sol.status, GpStatus::kInfeasible);
}

TEST(GpSolver, FeasibleStartSkipsPhase1) {
  // x = 1 is strictly feasible for x ≤ 10 — converges immediately.
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x));
  p.add_le1(0.1 * Monomial::var(x), "x <= 10");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok());
  // Objective pushed toward 0; barrier keeps it positive but tiny
  // relative to the cap.
  EXPECT_LT(sol.x[0], 1e-3);
}

TEST(GpSolver, ReportsIterLimitOnStarvedBudget) {
  GpProblem p;
  const VarId x = p.add_variable("x");
  const VarId y = p.add_variable("y");
  p.set_objective(Monomial::var(x) * Monomial::var(y));
  p.add_le1((Monomial::var(x) * Monomial::var(y)).inverse(), "xy >= 1");
  SolverOptions opts;
  opts.max_outer = 1;
  opts.max_newton = 1;
  GpSolution sol = GpSolver(opts).solve(p);
  EXPECT_NE(sol.status, GpStatus::kOptimal);
}

/// Parameterized: minimize x s.t. c/x ≤ 1 → x* = c, for several c.
class ScalarBoundGp : public ::testing::TestWithParam<double> {};

TEST_P(ScalarBoundGp, OptimumEqualsBound) {
  const double c = GetParam();
  GpProblem p;
  const VarId x = p.add_variable("x");
  p.set_objective(Monomial::var(x));
  p.add_le1(c * Monomial::var(x).inverse(), "x >= c");
  GpSolution sol = GpSolver().solve(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.x[0], c, c * 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, ScalarBoundGp,
                         ::testing::Values(0.01, 0.5, 1.0, 3.0, 42.0,
                                           1000.0));

// ---------------------------------------------------------------------------
// Batched kernel (gp/batched.hpp + GpSolver::solve_batch)
// ---------------------------------------------------------------------------

/// K structurally identical prepared models sharing ONE Structure object
/// (clone + patch, the model-cache hit path), one per problem.
std::vector<CompiledModel> shared_structure_models(
    const std::vector<GpProblem>& probs, double box) {
  std::vector<CompiledModel> models;
  models.reserve(probs.size());
  CompiledModel base = CompiledModel::build(probs[0], box);
  for (const GpProblem& p : probs) {
    CompiledModel m = base;  // shares structure
    m.patch_coefficients(p, box);
    models.push_back(std::move(m));
  }
  return models;
}

/// Batched-vs-scalar per-lane agreement across batch widths, including a
/// ragged width (7) and a K=1 singleton (which takes the scalar
/// fallback). The contract is tolerance-level: same status, same
/// optimum to solver tolerance — not bytes.
class BatchedWidth : public ::testing::TestWithParam<int> {};

TEST_P(BatchedWidth, PerLaneAgreementWithScalar) {
  const int k = GetParam();
  SolverOptions opts;
  std::vector<GpProblem> probs;
  for (int i = 0; i < k; ++i) {
    probs.push_back(salted_problem(0.8 + 0.45 * i));
  }
  const std::vector<CompiledModel> models =
      shared_structure_models(probs, opts.variable_box);
  std::vector<BatchLane> lanes(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    lanes[i].problem = &probs[i];
    lanes[i].model = &models[i];
  }
  const GpSolver solver(opts);
  const std::vector<GpSolution> batch = solver.solve_batch(lanes);
  ASSERT_EQ(batch.size(), probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const GpSolution scalar = solver.solve(probs[i], models[i]);
    ASSERT_EQ(batch[i].status, scalar.status) << "lane " << i;
    ASSERT_TRUE(batch[i].ok()) << "lane " << i;
    for (std::size_t j = 0; j < scalar.x.size(); ++j) {
      EXPECT_NEAR(batch[i].x[j], scalar.x[j],
                  1e-5 * std::max(1.0, std::fabs(scalar.x[j])))
          << "lane " << i << " var " << j;
    }
    EXPECT_NEAR(batch[i].objective, scalar.objective,
                1e-5 * std::max(1.0, std::fabs(scalar.objective)));
    EXPECT_LE(batch[i].max_violation, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BatchedWidth,
                         ::testing::Values(1, 2, 4, 7, 16));

TEST(BatchedSolve, EarlyExitLanesRetireWithoutPerturbingOthers) {
  // One warm lane (feasible seed: skips phase I, converges in few
  // rounds, retires while the cold lanes are still centering) mixed
  // with cold lanes. Every lane must still match its scalar solve.
  SolverOptions opts;
  std::vector<GpProblem> probs;
  for (int i = 0; i < 5; ++i) probs.push_back(salted_problem(0.7 + 0.6 * i));
  const std::vector<CompiledModel> models =
      shared_structure_models(probs, opts.variable_box);
  const GpSolver solver(opts);
  const GpSolution warm_seed = solver.solve(probs[2], models[2]);
  ASSERT_TRUE(warm_seed.ok());

  std::vector<BatchLane> lanes(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    lanes[i].problem = &probs[i];
    lanes[i].model = &models[i];
  }
  // The feasible seed plus a moderately raised opening shortens lane 2's
  // t-ladder, so it retires while the cold lanes are still climbing —
  // exercising the early-retire/compaction path. (t0 far beyond ~100
  // backfires on a problem this small: the high-t opening grinds, per
  // the SolverOptions::warm_gap note.)
  lanes[2].x0 = &warm_seed.x;
  lanes[2].t0 = 100.0;
  const std::vector<GpSolution> batch = solver.solve_batch(lanes);
  SolverOptions warm_opts = opts;
  warm_opts.t0 = 100.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const GpSolution scalar =
        i == 2 ? GpSolver(warm_opts).solve(probs[i], models[i], warm_seed.x)
               : solver.solve(probs[i], models[i]);
    ASSERT_EQ(batch[i].status, scalar.status) << "lane " << i;
    for (std::size_t j = 0; j < scalar.x.size(); ++j) {
      EXPECT_NEAR(batch[i].x[j], scalar.x[j],
                  1e-5 * std::max(1.0, std::fabs(scalar.x[j])));
    }
  }
  // The warm lane really did retire early: its t-ladder is structurally
  // shorter than a cold lane's. (Newton counts are only
  // tolerance-comparable across kernels, so the stage count is the
  // robust witness.)
  EXPECT_LT(batch[2].outer_iterations, batch[0].outer_iterations);
}

TEST(BatchedSolve, LaneResultsIndependentOfGroupFormationBitwise) {
  // The same instance solved in batches of different widths, positions
  // and companions must produce bit-identical results: per-lane
  // arithmetic never crosses lanes, so group formation order cannot
  // leak into a lane's answer.
  SolverOptions opts;
  std::vector<GpProblem> probs;
  for (int i = 0; i < 7; ++i) probs.push_back(salted_problem(0.9 + 0.37 * i));
  const std::vector<CompiledModel> models =
      shared_structure_models(probs, opts.variable_box);
  const GpSolver solver(opts);
  auto lane = [&](std::size_t i) {
    BatchLane l;
    l.problem = &probs[i];
    l.model = &models[i];
    return l;
  };

  // Probe instance 0 in three formations.
  const std::vector<GpSolution> a =
      solver.solve_batch({lane(0), lane(1)});
  const std::vector<GpSolution> b =
      solver.solve_batch({lane(3), lane(0), lane(4), lane(5), lane(6)});
  const std::vector<GpSolution> c = solver.solve_batch(
      {lane(6), lane(5), lane(4), lane(3), lane(2), lane(1), lane(0)});
  ASSERT_EQ(a[0].status, b[1].status);
  ASSERT_EQ(a[0].status, c[6].status);
  EXPECT_EQ(a[0].x, b[1].x);
  EXPECT_EQ(a[0].x, c[6].x);
  EXPECT_EQ(a[0].objective, b[1].objective);
  EXPECT_EQ(a[0].objective, c[6].objective);
  EXPECT_EQ(a[0].newton_iterations, b[1].newton_iterations);
  EXPECT_EQ(a[0].newton_iterations, c[6].newton_iterations);
  EXPECT_EQ(a[0].outer_iterations, c[6].outer_iterations);
  // And instance 1, which sat at opposite ends of two batches.
  EXPECT_EQ(a[1].x, c[5].x);
  EXPECT_EQ(a[1].newton_iterations, c[5].newton_iterations);
}

TEST(BatchedSolve, MisgroupedBatchFallsBackToScalarAndCounts) {
  // Structurally identical problems but *independently built* models:
  // no shared Structure object, so the batch must refuse (counting a
  // misgrouping) and fall back to per-lane scalar solves bit-exactly.
  SolverOptions opts;
  const GpProblem p0 = salted_problem(1.1);
  const GpProblem p1 = salted_problem(2.3);
  const CompiledModel m0 = CompiledModel::build(p0, opts.variable_box);
  const CompiledModel m1 = CompiledModel::build(p1, opts.variable_box);
  ASSERT_FALSE(m0.gp().same_structure(m1.gp()));

  const std::int64_t misgroupings0 = total_batched_misgroupings();
  const std::int64_t solves0 = total_batched_solves();
  const GpSolver solver(opts);
  std::vector<BatchLane> lanes(2);
  lanes[0].problem = &p0;
  lanes[0].model = &m0;
  lanes[1].problem = &p1;
  lanes[1].model = &m1;
  const std::vector<GpSolution> batch = solver.solve_batch(lanes);
  EXPECT_EQ(total_batched_misgroupings(), misgroupings0 + 1);
  EXPECT_EQ(total_batched_solves(), solves0);  // fell back, not batched

  const GpSolution s0 = solver.solve(p0, m0);
  const GpSolution s1 = solver.solve(p1, m1);
  EXPECT_EQ(batch[0].x, s0.x);  // scalar fallback is bit-identical
  EXPECT_EQ(batch[1].x, s1.x);
  EXPECT_EQ(batch[0].newton_iterations, s0.newton_iterations);
  EXPECT_EQ(batch[1].newton_iterations, s1.newton_iterations);
}

}  // namespace
}  // namespace mfa::gp
